"""Crash-resume speedup and steady-state journaling overhead.

The durability contract (DESIGN.md section 9) has two performance
halves, measured here on the PR-2 batch-serving workload (16
homomorphism queries over 4 distinct patterns, CMM reuse on):

(a) *Steady state*: journaling every admission, share outcome, and
    commit (CRC-framed, fsync'd appends) must cost <= 5% of the
    unjournaled batch makespan -- durability is not allowed to eat the
    batch engine's speedup.

(b) *Crash resume*: after a crash ~90% of the way through the batch
    (simulated by truncating the journal to the exact bytes
    ``kill -9`` mid-write leaves behind), restarting with resume must
    complete >= 2x faster than a cold restart that recomputes the whole
    batch -- and the resumed answers must be byte-identical to the
    uninterrupted run's.

Scale: slashdot at 0.2x the registry default, matching
``bench_batch_serving.py`` -- the numbers are relative costs of the
durability layer, not paper figures.
"""

import time

from _common import (
    SCALE,
    bench_config,
    emit,
    format_row,
    parse_cli,
    write_bench_json,
)

from repro.framework.prilo_star import PriloStar
from repro.framework.server import QueryBatchEngine
from repro.graph.query import Semantics
from repro.storage.journal import RunJournal, journal_key
from repro.workloads.datasets import load_dataset

BATCH = 16
DISTINCT_QUERIES = 4
QUERY_SIZE = 8
QUERY_DIAMETER = 3
BENCH_SCALE = 0.2 * SCALE
MAX_OVERHEAD = 0.05
MIN_RESUME_SPEEDUP = 2.0
#: Timings are min-of-N: the journal's true cost is ~100ms against a
#: ~2s batch, so a single-shot measurement is dominated by scheduler
#: noise rather than the durability layer being measured.
REPEATS = 3
#: Crash after ~90% of the durable checkpoints: the late-batch crash is
#: the case durability exists for (most of the work is already paid
#: for), and the re-evaluated tail is still a real multi-share suffix.
CRASH_FRACTION = 0.9


def _setup():
    ds = load_dataset("slashdot", scale=BENCH_SCALE)
    graph = ds.graph_for(Semantics.HOM)
    config = bench_config(radii=(QUERY_DIAMETER,))
    distinct = ds.random_queries(DISTINCT_QUERIES, size=QUERY_SIZE,
                                 diameter=QUERY_DIAMETER,
                                 semantics=Semantics.HOM, seed=5)
    queries = [distinct[i % DISTINCT_QUERIES] for i in range(BATCH)]
    return graph, config, queries


def _answer_key(result):
    return (result.candidate_ids,
            tuple(sorted(result.verified_ids)),
            tuple(sorted(result.match_ball_ids)),
            result.num_matches)


def _serve(graph, config, queries, journal_path):
    """Serve the batch on a fresh engine; return (report, seconds).

    Engine setup is excluded from the clock on *every* path (it is
    identical for plain/journaled/cold/resume, and what the speedup
    measures is completion of the serving work after a restart).
    """
    journal = (RunJournal(journal_path, journal_key(config.seed))
               if journal_path else None)
    try:
        with QueryBatchEngine(PriloStar.setup(graph, config),
                              journal=journal) as server:
            started = time.perf_counter()
            report = server.serve(queries)
            seconds = time.perf_counter() - started
    finally:
        if journal is not None:
            journal.close()
    return report, seconds


def _count_frames(data):
    offset, frames = 0, 0
    while True:
        frame = RunJournal._read_frame(data, offset)
        if frame is None:
            return frames
        offset = frame[2]
        frames += 1


def _truncate_after(path, keep_records):
    """Crash simulation: keep ``keep_records`` frames plus a torn tail --
    byte-for-byte what ``kill -9`` mid-append leaves on disk."""
    data = path.read_bytes()
    offset = 0
    for _ in range(keep_records):
        frame = RunJournal._read_frame(data, offset)
        if frame is None:
            break
        offset = frame[2]
    path.write_bytes(data[:offset] + b"\xa5\x03\x10")


def crash_resume_study(tmp_dir) -> dict:
    from pathlib import Path

    tmp = Path(tmp_dir)
    graph, config, queries = _setup()

    plain_times, journaled_times = [], []
    full_path = tmp / "full.journal"
    for round_id in range(REPEATS):
        plain, seconds = _serve(graph, config, queries, None)
        plain_times.append(seconds)
        path = tmp / f"full-{round_id}.journal"
        journaled, seconds = _serve(graph, config, queries, path)
        journaled_times.append(seconds)
        assert ([_answer_key(r) for r in journaled.results]
                == [_answer_key(r) for r in plain.results]), (
            "journaling changed the answers")
    full_path.write_bytes((tmp / "full-0.journal").read_bytes())
    plain_seconds = min(plain_times)
    journaled_seconds = min(journaled_times)
    overhead = ((journaled_seconds - plain_seconds) / plain_seconds
                if plain_seconds > 0 else 0.0)
    checkpoints = journaled.journal.checkpoints_written

    # Crash: truncate the full journal after ~90% of its *frames* --
    # begin/share/commit records interleave, so the frame count (not the
    # share-checkpoint count) is what tracks batch progress.
    crash_path = tmp / "crashed.journal"
    full_bytes = full_path.read_bytes()
    crash_path.write_bytes(full_bytes)
    _truncate_after(crash_path,
                    int(_count_frames(full_bytes) * CRASH_FRACTION))
    crashed_bytes = crash_path.read_bytes()

    # Resume appends to the journal it recovers, so every timed round
    # restarts from a fresh copy of the same crashed journal.  The cold
    # restart keeps journaling on (fresh file) so the comparison
    # isolates resume, not durability bookkeeping.
    resume_times, cold_times = [], []
    for round_id in range(REPEATS):
        path = tmp / f"crashed-{round_id}.journal"
        path.write_bytes(crashed_bytes)
        resumed, seconds = _serve(graph, config, queries, path)
        resume_times.append(seconds)
        cold, seconds = _serve(graph, config, queries,
                               tmp / f"cold-{round_id}.journal")
        cold_times.append(seconds)
        assert ([_answer_key(r) for r in resumed.results]
                == [_answer_key(r) for r in cold.results]
                == [_answer_key(r) for r in plain.results]), (
            "resume diverged from the uninterrupted answers")
    resume_seconds = min(resume_times)
    cold_seconds = min(cold_times)
    assert resumed.journal.shares_skipped >= 1, "resume replayed nothing"

    speedup = cold_seconds / resume_seconds if resume_seconds > 0 else 1.0
    return {
        "batch": BATCH,
        "distinct_queries": DISTINCT_QUERIES,
        "crash_fraction": CRASH_FRACTION,
        "plain_seconds": plain_seconds,
        "journaled_seconds": journaled_seconds,
        "journal_overhead": overhead,
        "checkpoints_written": checkpoints,
        "cold_restart_seconds": cold_seconds,
        "resume_seconds": resume_seconds,
        "resume_speedup": speedup,
        "shares_skipped": resumed.journal.shares_skipped,
        "records_replayed": resumed.journal.records_replayed,
        "shares_evaluated_on_resume": resumed.journal.shares_evaluated,
        "replayed_commits": resumed.admission.replayed_commits,
        "identical_answers": True,
    }


# ----------------------------------------------------------------------
# pytest-benchmark entry point
# ----------------------------------------------------------------------
def test_crash_resume(benchmark, tmp_path):
    study = benchmark.pedantic(crash_resume_study, args=(tmp_path,),
                               rounds=1, iterations=1)
    assert study["identical_answers"]
    assert study["resume_speedup"] >= MIN_RESUME_SPEEDUP, (
        f"resume only {study['resume_speedup']:.2f}x faster than a cold "
        f"restart (< {MIN_RESUME_SPEEDUP:.0f}x)")
    assert study["journal_overhead"] <= MAX_OVERHEAD, (
        f"steady-state journaling overhead {study['journal_overhead']:.1%}"
        f" > {MAX_OVERHEAD:.0%}")


# ----------------------------------------------------------------------
# Script mode (--json writes benchmarks/out/BENCH_journal.json)
# ----------------------------------------------------------------------
def main(argv=None) -> None:
    import tempfile

    args = parse_cli(argv)
    with tempfile.TemporaryDirectory() as tmp:
        study = crash_resume_study(tmp)

    widths = (22, 12, 12)
    lines = [format_row(("configuration", "seconds", "relative"), widths)]
    lines.append(format_row(
        ("batch (no journal)", f"{study['plain_seconds']:.3f}", "-"),
        widths))
    lines.append(format_row(
        ("batch (journaled)", f"{study['journaled_seconds']:.3f}",
         f"+{study['journal_overhead']:.1%}"), widths))
    lines.append(format_row(
        ("cold restart", f"{study['cold_restart_seconds']:.3f}", "-"),
        widths))
    lines.append(format_row(
        ("resume", f"{study['resume_seconds']:.3f}",
         f"{study['resume_speedup']:.2f}x"), widths))
    lines.append("")
    lines.append(
        f"crash at {study['crash_fraction']:.0%} of "
        f"{study['checkpoints_written']} checkpoints: resume skipped "
        f"{study['shares_skipped']} journaled shares, re-evaluated "
        f"{study['shares_evaluated_on_resume']}, replayed "
        f"{study['replayed_commits']} commits")
    emit("crash_resume", lines)

    assert study["resume_speedup"] >= MIN_RESUME_SPEEDUP, (
        f"resume only {study['resume_speedup']:.2f}x faster than cold "
        "restart")
    assert study["journal_overhead"] <= MAX_OVERHEAD, (
        f"journal overhead {study['journal_overhead']:.1%} > "
        f"{MAX_OVERHEAD:.0%}")

    if args.json:
        write_bench_json("journal", {
            "dataset": "slashdot", "scale": BENCH_SCALE,
            "semantics": "hom", **study})


if __name__ == "__main__":
    main()
