"""Ablation: Eq. 1's bloom-filter trade-off (Sec. 4.1.2).

"With Eq. 1, we can tune p to balance the data transmission cost and the
pruning power of BF."  Sweeping the target false-positive rate p shows the
two sides: smaller p means bigger filters (more bytes across the metered
enclave boundary) and fewer BF false positives.
"""

from dataclasses import replace

from _common import NUM_QUERIES, bench_config, dataset, emit, format_row

from repro.filters.bloom import required_bits
from repro.workloads.experiments import pruning_study

P_VALUES = (0.5, 0.3, 0.05)


def test_ablation_bloom_tradeoff(benchmark):
    ds = dataset("slashdot")
    queries = ds.random_queries(NUM_QUERIES, size=8, diameter=3, seed=13)
    base = bench_config()

    def sweep():
        outcomes = {}
        for p in P_VALUES:
            config = replace(
                base, bf=replace(base.bf, false_positive_rate=p))
            outcomes[p] = pruning_study(ds, queries, methods=("bf",),
                                        config=config, combine=())
        return outcomes

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    widths = (8, 14, 12, 12, 12)
    lines = [format_row(("p", "filter bits", "remaining", "fp", "cost(s)"),
                        widths)]
    remaining = {}
    for p in P_VALUES:
        study = outcomes[p]
        counts = study.confusion["bf"]
        bits = required_bits(base.bf.expected_trees, p)
        remaining[p] = study.remaining("bf")
        lines.append(format_row(
            (p, bits, remaining[p], counts.fp,
             f"{study.total_cost['bf']:.3f}"), widths))
        assert counts.fn == 0
    emit("abl_bloom_tradeoff", lines)

    # Eq. 1 direction: tighter p never costs pruning power.
    assert remaining[0.05] <= remaining[0.5]
    assert (required_bits(base.bf.expected_trees, 0.05)
            > required_bits(base.bf.expected_trees, 0.5))
