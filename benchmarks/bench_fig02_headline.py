"""Fig. 2: the paper's headline results.

(a) Average pruning power of the oblivious techniques: 3-hop neighbor
    labels [17] < paths [57] < twiglets (fraction of negatives pruned).
(b) Speedup on Slashdot: RSG time-to-first-results over Prilo*'s
    (PM + SSG), which the paper reports as ~4x.
"""

import os
import time

from _common import (
    NUM_QUERIES,
    bench_config,
    dataset,
    emit,
    format_row,
    parse_cli,
    write_headline_json,
)

from repro.workloads.experiments import pruning_study, retrieval_study


def test_fig2a_pruning_power(benchmark):
    ds = dataset("slashdot")
    queries = ds.random_queries(NUM_QUERIES, size=8, diameter=3, seed=3)
    config = bench_config()

    study = benchmark.pedantic(
        pruning_study, args=(ds, queries),
        kwargs={"methods": ("neighbor", "path", "twiglet"),
                "config": config, "combine": ()},
        rounds=1, iterations=1)

    widths = (12, 12, 14, 10)
    lines = [format_row(("method", "remaining", "pruned-frac", "PPCR"),
                        widths)]
    negatives = study.candidates - (study.confusion["twiglet"].tp
                                    + study.confusion["twiglet"].fn)
    for method in ("neighbor", "path", "twiglet"):
        counts = study.confusion[method]
        pruned_frac = counts.pruned / max(negatives, 1)
        lines.append(format_row(
            (method, study.remaining(method), f"{pruned_frac:.2f}",
             f"{counts.ppcr:.2f}"), widths))
        assert counts.fn == 0
    emit("fig02a_pruning_power", lines)

    # Fig. 2(a) ordering: twiglet >= path >= neighbor pruning power.
    assert (study.confusion["twiglet"].pruned
            >= study.confusion["path"].pruned
            >= study.confusion["neighbor"].pruned)


def test_fig2b_slashdot_speedup(benchmark):
    """Fig. 2(b)'s metric is the time for the user to obtain the *first*
    query results: SSG places a positive at the front of some player's
    sequence, RSG somewhere random.

    Both semantics are reported.  The clear speedups appear under ssim,
    whose per-ball verification cost is uniform across negatives (the
    paper's regime); under hom at this scale most negative balls die in
    candidate enumeration at near-zero cost, so first-result times are
    bounded by the positive ball's own evaluation either way.
    """
    from repro.graph.query import Semantics

    ds = dataset("slashdot")
    config = bench_config()

    def run_both():
        return {
            semantics: retrieval_study(
                ds, ds.random_queries(NUM_QUERIES, size=8, diameter=3,
                                      semantics=semantics, seed=4),
                k_values=(4,), config=config)
            for semantics in (Semantics.HOM, Semantics.SSIM)
        }

    studies = benchmark.pedantic(run_both, rounds=1, iterations=1)
    widths = (8, 8, 10, 14, 14, 10)
    lines = [format_row(("sem", "query", "PPCR", "SSG-first(s)",
                         "RSG-first(s)", "speedup"), widths)]
    mean_by_semantics = {}
    for semantics, study in studies.items():
        speedups = []
        for i, record in enumerate(study.records):
            ssg, rsg = record.ssg_first_positive, record.rsg_first_positive
            speedup = min(rsg / ssg, 100.0) if ssg > 0 else 1.0
            speedups.append(speedup)
            lines.append(format_row(
                (semantics.value, f"q{i}", f"{record.ppcr:.2f}",
                 f"{ssg:.4f}", f"{rsg:.4f}", f"{speedup:.1f}x"), widths))
        mean_by_semantics[semantics] = sum(speedups) / len(speedups)
    lines.append("mean first-result speedup: " + ", ".join(
        f"{s.value}: {v:.1f}x" for s, v in mean_by_semantics.items())
        + " (paper: ~4x on Slashdot)")
    emit("fig02b_slashdot_speedup", lines)

    # Shape: Prilo* is never slower, and clearly faster where negatives
    # carry evaluation cost.
    assert all(v >= 0.99 for v in mean_by_semantics.values())
    assert mean_by_semantics[Semantics.SSIM] >= 1.5


# ----------------------------------------------------------------------
# Script mode: the serial-vs-parallel headline comparison (--json)
# ----------------------------------------------------------------------
def headline_comparison(parallelism: int = 4) -> tuple[dict, list[str]]:
    """Run one Slashdot query under both executor backends.

    Parallelism is reported two ways, as everywhere in this repo:

    * *measured wall-clock* of each backend's evaluation fan-out -- the
      raw elapsed numbers, honest about the host (on a single-core box the
      process pool cannot beat serial in real time; ``host_cpus`` is
      recorded next to them);
    * *schedule replay*: per-ball costs are measured once and replayed
      over the k player sequences (`repro.framework.simulator`), the
      deterministic metric the paper's figures use.  The headline speedup
      is serial total evaluation time over the k-worker makespan.

    Both runs must produce identical answers -- asserted, and recorded as
    ``match_sets_identical``.
    """
    from repro.framework.prilo_star import PriloStar
    from repro.graph.query import Semantics

    ds = dataset("slashdot")
    graph = ds.graph_for(Semantics.SSIM)
    # ssim: per-ball verification cost is uniform across negatives, the
    # regime where parallel evaluation (and Fig. 2(b)) pays off.
    query = ds.random_queries(1, size=8, diameter=3,
                              semantics=Semantics.SSIM, seed=4)[0]
    config = bench_config(k_players=parallelism)

    # RSG ordering for the backend comparison: sequences are disjoint and
    # balanced, so the k-worker makespan measures pure parallelism.  (SSG's
    # dummy duplication doubles every worker's load by design -- it buys
    # early results, not throughput -- and would cap the speedup at k/2.)
    started = time.perf_counter()
    serial = PriloStar.setup(graph, config, use_ssg=False).run(query)
    serial_elapsed = time.perf_counter() - started

    with PriloStar.setup(graph, config, use_ssg=False, executor="process",
                         parallelism=parallelism) as engine:
        started = time.perf_counter()
        parallel = engine.run(query)
        parallel_elapsed = time.perf_counter() - started

    assert serial.match_ball_ids == parallel.match_ball_ids
    assert serial.verified_ids == parallel.verified_ids
    assert serial.pm_positive_ids == parallel.pm_positive_ids

    candidates = len(serial.candidate_ids)
    kept = len(serial.pm_positive_ids)
    serial_eval = serial.metrics.timings.evaluation
    # Schedule replay over ONE consistent cost measurement (the serial
    # run's, free of multi-process contention): the same per-ball costs
    # summed on one worker vs. their k-sequence makespan.
    makespan = serial.schedule.makespan
    replay_speedup = serial_eval / makespan if makespan > 0 else 1.0
    wall_speedup = (serial.metrics.eval_wall_seconds
                    / parallel.metrics.eval_wall_seconds
                    if parallel.metrics.eval_wall_seconds > 0 else 1.0)

    payload = {
        "benchmark": "fig02_headline",
        "dataset": "slashdot",
        "semantics": "ssim",
        "host_cpus": os.cpu_count(),
        "parallelism": parallelism,
        "pruning": {
            "candidate_balls": candidates,
            "kept_after_pms": kept,
            "pruning_power": 1.0 - kept / max(candidates, 1),
        },
        "serial": {
            "eval_seconds": serial_eval,
            "eval_wall_seconds": serial.metrics.eval_wall_seconds,
            "run_elapsed_seconds": serial_elapsed,
            "time_to_first_result": serial.time_to_first_match(),
        },
        "parallel": {
            "backend": parallel.metrics.executor_backend,
            "workers": parallel.metrics.workers,
            "makespan_seconds": makespan,
            "own_costs_makespan_seconds": parallel.schedule.makespan,
            "eval_wall_seconds": parallel.metrics.eval_wall_seconds,
            "run_elapsed_seconds": parallel_elapsed,
            "time_to_first_result": parallel.time_to_first_match(),
            "per_worker_eval_wall": {
                str(worker): wall for worker, wall in
                sorted(parallel.metrics.per_worker_eval_wall.items())},
        },
        "speedup": {
            "schedule_replay": replay_speedup,
            "measured_wall": wall_speedup,
        },
        "match_sets_identical": True,
    }

    widths = (26, 14)
    lines = [format_row(("metric", "value"), widths)]
    for metric, value in (
        ("candidate balls", candidates),
        ("kept after PMs", kept),
        ("pruning power", f"{payload['pruning']['pruning_power']:.2f}"),
        ("serial eval (s)", f"{serial_eval:.4f}"),
        (f"{parallelism}-worker makespan (s)", f"{makespan:.4f}"),
        ("time to first result (s)",
         f"{payload['parallel']['time_to_first_result']:.4f}"
         if payload["parallel"]["time_to_first_result"] is not None
         else "n/a"),
        ("replay speedup", f"{replay_speedup:.2f}x"),
        ("measured wall speedup", f"{wall_speedup:.2f}x"),
        ("host cpus", os.cpu_count()),
    ):
        lines.append(format_row((metric, value), widths))
    return payload, lines


# ----------------------------------------------------------------------
# Kernels A/B: batched crypto kernels vs the naive fold (--json)
# ----------------------------------------------------------------------
def kernels_comparison() -> tuple[dict, list[str]]:
    """One Slashdot hom query, serial backend, naive vs batched kernels.

    The batched path (Straus shared-window tables + the per-pattern chunk
    memo, DESIGN.md section 11) must produce *identical* answers -- the
    kernels are value-identical by contract, asserted here on the full
    pipeline -- while spending strictly fewer modular multiplications.
    The headline number is the verification-phase (``timings.evaluation``)
    speedup; CI gates on >= 3x (the pattern redundancy alone is ~5.7x on
    this workload, see DESIGN.md section 7).
    """
    from repro.crypto.ops import OpCounter
    from repro.crypto.kernels import DEFAULT_KERNELS, NAIVE_KERNELS
    from repro.framework.prilo_star import PriloStar
    from repro.graph.query import Semantics

    ds = dataset("slashdot")
    graph = ds.graph_for(Semantics.HOM)
    query = ds.random_queries(1, size=8, diameter=3,
                              semantics=Semantics.HOM, seed=4)[0]

    results = {}
    elapsed = {}
    for label, kernels in (("naive", NAIVE_KERNELS),
                           ("batched", DEFAULT_KERNELS)):
        config = bench_config(kernels=kernels)
        started = time.perf_counter()
        results[label] = PriloStar.setup(graph, config,
                                         use_ssg=False).run(query)
        elapsed[label] = time.perf_counter() - started

    naive, batched = results["naive"], results["batched"]
    # Same seed, same randomness stream, value-identical kernels: the
    # answer sets must agree exactly.
    assert batched.match_ball_ids == naive.match_ball_ids
    assert batched.verified_ids == naive.verified_ids
    assert batched.pm_positive_ids == naive.pm_positive_ids
    assert batched.num_matches == naive.num_matches

    naive_eval = naive.metrics.timings.evaluation
    batched_eval = batched.metrics.timings.evaluation
    speedup = naive_eval / batched_eval if batched_eval > 0 else 1.0
    naive_ops = naive.metrics.ops.totals()
    batched_ops = batched.metrics.ops.totals()
    assert 0 < batched_ops.modmul <= naive_ops.modmul, (
        f"batched path spent {batched_ops.modmul} modmuls vs the naive "
        f"path's {naive_ops.modmul} -- the kernels must never do more "
        "work")

    def side(label, result):
        timings = result.metrics.timings
        return {
            "eval_seconds": timings.evaluation,
            "run_elapsed_seconds": elapsed[label],
            "modmul": result.metrics.ops.totals().modmul,
            "modexp": result.metrics.ops.totals().modexp,
            "table_build": result.metrics.ops.totals().table_build,
            "ops_by_phase": {
                phase: counts.as_dict() for phase, counts in
                result.metrics.ops.phase_totals().items()},
        }

    payload = {
        "dataset": "slashdot",
        "semantics": "hom",
        "query_size": 8,
        "backend": "serial",
        "naive": side("naive", naive),
        "batched": side("batched", batched),
        "speedup_evaluation": speedup,
        "modmul_ratio": (naive_ops.modmul / batched_ops.modmul
                         if batched_ops.modmul else 1.0),
        "answers_identical": True,
    }

    widths = (26, 14, 14)
    lines = [format_row(("metric", "naive", "batched"), widths)]
    for metric, a, b in (
        ("evaluation (s)", f"{naive_eval:.4f}", f"{batched_eval:.4f}"),
        ("modmul", naive_ops.modmul, batched_ops.modmul),
        ("modexp", naive_ops.modexp, batched_ops.modexp),
        ("table builds", naive_ops.table_build, batched_ops.table_build),
    ):
        lines.append(format_row((metric, a, b), widths))
    lines.append(f"verification-phase speedup: {speedup:.2f}x "
                 f"(modmul ratio {payload['modmul_ratio']:.1f}x)")
    return payload, lines


def main(argv=None) -> None:
    args = parse_cli(argv)
    payload, lines = headline_comparison()
    emit("fig02_headline_backends", lines)
    kernels_payload, kernels_lines = kernels_comparison()
    emit("fig02_headline_kernels", kernels_lines)
    payload["kernels"] = kernels_payload
    if args.json:
        write_headline_json(payload)


if __name__ == "__main__":
    main()
