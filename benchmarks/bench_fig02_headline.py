"""Fig. 2: the paper's headline results.

(a) Average pruning power of the oblivious techniques: 3-hop neighbor
    labels [17] < paths [57] < twiglets (fraction of negatives pruned).
(b) Speedup on Slashdot: RSG time-to-first-results over Prilo*'s
    (PM + SSG), which the paper reports as ~4x.
"""

from _common import NUM_QUERIES, bench_config, dataset, emit, format_row

from repro.workloads.experiments import pruning_study, retrieval_study


def test_fig2a_pruning_power(benchmark):
    ds = dataset("slashdot")
    queries = ds.random_queries(NUM_QUERIES, size=8, diameter=3, seed=3)
    config = bench_config()

    study = benchmark.pedantic(
        pruning_study, args=(ds, queries),
        kwargs={"methods": ("neighbor", "path", "twiglet"),
                "config": config, "combine": ()},
        rounds=1, iterations=1)

    widths = (12, 12, 14, 10)
    lines = [format_row(("method", "remaining", "pruned-frac", "PPCR"),
                        widths)]
    negatives = study.candidates - (study.confusion["twiglet"].tp
                                    + study.confusion["twiglet"].fn)
    for method in ("neighbor", "path", "twiglet"):
        counts = study.confusion[method]
        pruned_frac = counts.pruned / max(negatives, 1)
        lines.append(format_row(
            (method, study.remaining(method), f"{pruned_frac:.2f}",
             f"{counts.ppcr:.2f}"), widths))
        assert counts.fn == 0
    emit("fig02a_pruning_power", lines)

    # Fig. 2(a) ordering: twiglet >= path >= neighbor pruning power.
    assert (study.confusion["twiglet"].pruned
            >= study.confusion["path"].pruned
            >= study.confusion["neighbor"].pruned)


def test_fig2b_slashdot_speedup(benchmark):
    """Fig. 2(b)'s metric is the time for the user to obtain the *first*
    query results: SSG places a positive at the front of some player's
    sequence, RSG somewhere random.

    Both semantics are reported.  The clear speedups appear under ssim,
    whose per-ball verification cost is uniform across negatives (the
    paper's regime); under hom at this scale most negative balls die in
    candidate enumeration at near-zero cost, so first-result times are
    bounded by the positive ball's own evaluation either way.
    """
    from repro.graph.query import Semantics

    ds = dataset("slashdot")
    config = bench_config()

    def run_both():
        return {
            semantics: retrieval_study(
                ds, ds.random_queries(NUM_QUERIES, size=8, diameter=3,
                                      semantics=semantics, seed=4),
                k_values=(4,), config=config)
            for semantics in (Semantics.HOM, Semantics.SSIM)
        }

    studies = benchmark.pedantic(run_both, rounds=1, iterations=1)
    widths = (8, 8, 10, 14, 14, 10)
    lines = [format_row(("sem", "query", "PPCR", "SSG-first(s)",
                         "RSG-first(s)", "speedup"), widths)]
    mean_by_semantics = {}
    for semantics, study in studies.items():
        speedups = []
        for i, record in enumerate(study.records):
            ssg, rsg = record.ssg_first_positive, record.rsg_first_positive
            speedup = min(rsg / ssg, 100.0) if ssg > 0 else 1.0
            speedups.append(speedup)
            lines.append(format_row(
                (semantics.value, f"q{i}", f"{record.ppcr:.2f}",
                 f"{ssg:.4f}", f"{rsg:.4f}", f"{speedup:.1f}x"), widths))
        mean_by_semantics[semantics] = sum(speedups) / len(speedups)
    lines.append("mean first-result speedup: " + ", ".join(
        f"{s.value}: {v:.1f}x" for s, v in mean_by_semantics.items())
        + " (paper: ~4x on Slashdot)")
    emit("fig02b_slashdot_speedup", lines)

    # Shape: Prilo* is never slower, and clearly faster where negatives
    # carry evaluation cost.
    assert all(v >= 0.99 for v in mean_by_semantics.values())
    assert mean_by_semantics[Semantics.SSIM] >= 1.5
