"""Table 5: characteristics of the 20 LDBC business-intelligence workloads,
plus instantiation of the 10 tested ones against the LDBC-like graph."""

from _common import dataset, emit, format_row

from repro.graph.ldbc import TESTED_WORKLOADS, WORKLOAD_SHAPES, workload_queries


def test_table5_workloads(benchmark):
    graph = dataset("ldbc").graph
    queries = benchmark(workload_queries, graph)

    widths = (6, 5, 5, 5, 8, 34)
    lines = [format_row(("query", "|V|", "|S|", "d_Q", "tested", "remarks"),
                        widths)]
    for shape in WORKLOAD_SHAPES:
        lines.append(format_row(
            (shape.name, shape.num_vertices, shape.num_labels,
             shape.diameter, "yes" if shape.tested else "no",
             shape.remark), widths))
    emit("tab05_ldbc_workloads", lines)

    assert len(queries) == len(TESTED_WORKLOADS) == 10
    for shape in TESTED_WORKLOADS:
        query = queries[shape.name]
        assert query.size == shape.num_vertices
        assert query.diameter == shape.diameter
