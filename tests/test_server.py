"""Batch serving (:mod:`repro.framework.server`).

The load-bearing property: serving a batch through
:class:`QueryBatchEngine` -- cached enumeration, pattern-grouped
verification -- is *value-identical* to running the same queries through
a fresh engine one at a time, across semantics, pruning settings and
executor backends.  Plus the cache contract: bounded weight, LRU
eviction, shared :class:`CacheStats` counters, and the signature
agreement between the user-side and SP-side key builders.
"""

from dataclasses import replace

import pytest

from repro.core.bf_pruning import BFConfig
from repro.framework.metrics import CacheStats
from repro.framework.prilo import Prilo
from repro.framework.prilo_star import PriloStar
from repro.framework.server import (
    CMMCache,
    QueryBatchEngine,
    enumeration_signature,
    prepare_ball,
    signature_of_view,
)
from repro.graph.query import QueryLabelView, Semantics


def _queries(dataset, semantics, count=3, distinct=2):
    base = dataset.random_queries(distinct, size=4, diameter=2,
                                  semantics=semantics, seed=13)
    return [base[i % distinct] for i in range(count)]


def _result_key(result):
    return (result.candidate_ids, result.pm_positive_ids,
            result.verified_ids, result.match_ball_ids,
            result.num_matches, sorted(result.matches))


def _pruning_config(test_config):
    return replace(test_config, use_twiglet=True, use_bf=True,
                   bf=BFConfig(eta=16, expected_trees=200))


class TestBatchEqualsSequential:
    @pytest.mark.parametrize("semantics", [Semantics.HOM,
                                           Semantics.SUB_ISO,
                                           Semantics.SSIM])
    @pytest.mark.parametrize("pruning", [False, True])
    def test_serial_backend(self, dataset, test_config, semantics, pruning):
        config = _pruning_config(test_config) if pruning else test_config
        graph = dataset.graph_for(semantics)
        queries = _queries(dataset, semantics)

        # One engine for all sequential runs: the CGBE randomness stream
        # is positional, so the batch side must consume it identically.
        engine_cls = PriloStar if pruning else Prilo
        sequential_engine = engine_cls.setup(graph, config)
        sequential = [sequential_engine.run(q) for q in queries]

        batch_engine = QueryBatchEngine(engine_cls.setup(graph, config))
        report = batch_engine.serve(queries)

        assert len(report.results) == len(queries)
        for seq, bat in zip(sequential, report.results):
            assert _result_key(seq) == _result_key(bat)

    @pytest.mark.parametrize("semantics", [Semantics.HOM, Semantics.SSIM])
    def test_process_backend(self, dataset, test_config, semantics):
        config = replace(test_config, executor="process", parallelism=2)
        graph = dataset.graph_for(semantics)
        queries = _queries(dataset, semantics, count=2)

        with Prilo.setup(graph, config) as sequential_engine:
            sequential = [sequential_engine.run(q) for q in queries]
        with Prilo.setup(graph, config) as engine:
            report = QueryBatchEngine(engine).serve(queries)

        for seq, bat in zip(sequential, report.results):
            assert _result_key(seq) == _result_key(bat)

    def test_grouping_and_hits(self, dataset, test_config):
        queries = _queries(dataset, Semantics.HOM, count=4, distinct=2)
        report = QueryBatchEngine(
            Prilo.setup(dataset.graph, test_config)).serve(queries)
        assert report.distinct_signatures == 2
        assert sorted(i for g in report.signature_groups.values()
                      for i in g) == [0, 1, 2, 3]
        # Queries 2-3 re-see every ball their signature twin enumerated.
        assert report.cache_stats.hits > 0
        assert report.cache_stats.hit_rate >= 0.5
        summary = report.summary()
        assert summary["queries"] == 4
        assert summary["distinct_signatures"] == 2
        assert len(summary["latency_seconds"]) == 4

    def test_ssim_bypasses_cache(self, dataset, test_config):
        """SSIM verification is not CMM-shaped -- the engine must fall
        back to the streaming kernel and leave the cache untouched."""
        queries = _queries(dataset, Semantics.SSIM, count=2, distinct=1)
        engine = Prilo.setup(dataset.graph_for(Semantics.SSIM), test_config)
        report = QueryBatchEngine(engine).serve(queries)
        assert report.cache_stats.lookups == 0
        assert report.cache_stats.entries == 0


class TestCMMCache:
    def _view_and_balls(self, dataset, count=4):
        from repro.graph.ball import BallIndex
        from repro.workloads.datasets import tiny_dataset

        # A fresh dataset instance pins the query to the first draw of a
        # fresh QGen stream: the shared session fixture's streams are
        # stateful, so going through it would make this cache-weight
        # test depend on how many queries *earlier test files* drew.
        query = tiny_dataset(seed=2).random_queries(
            1, size=4, diameter=2, seed=13)[0]
        view = QueryLabelView(
            labels=tuple(query.label(u) for u in query.vertex_order),
            diameter=query.diameter, semantics=query.semantics)
        index = BallIndex(dataset.graph, (2,))
        balls = []
        for center in dataset.graph.vertices():
            ball = index.ball(center, 2)
            prepared = prepare_ball(view, ball, enumeration_limit=2000,
                                    cmm_bound_bypass=2000)
            if prepared.enumerated > 0:
                balls.append(ball)
            if len(balls) == count:
                break
        assert len(balls) == count, "tiny dataset should offer enough balls"
        return view, balls

    def test_weight_bound_and_eviction(self, dataset):
        view, balls = self._view_and_balls(dataset)
        weights = [prepare_ball(view, b, enumeration_limit=2000,
                                cmm_bound_bypass=2000).weight for b in balls]
        cache = CMMCache(max_weight=max(weights[:2]) + min(weights[:2]))
        for ball in balls:
            cache.prepare(view, ball, enumeration_limit=2000,
                          cmm_bound_bypass=2000)
            assert cache.weight <= cache.max_weight or len(cache) == 1
        assert cache.stats.evictions > 0
        assert cache.stats.misses == len(balls)
        assert cache.stats.entries == len(cache)
        assert cache.stats.weight == cache.weight
        assert cache.stats.capacity == cache.max_weight

    def test_lru_order(self, dataset):
        view, balls = self._view_and_balls(dataset, count=3)
        a, b, c = balls
        kwargs = dict(enumeration_limit=2000, cmm_bound_bypass=2000)
        wa, wb = (prepare_ball(view, x, **kwargs).weight for x in (a, b))
        cache = CMMCache(max_weight=wa + wb)
        cache.prepare(view, a, **kwargs)
        cache.prepare(view, b, **kwargs)
        cache.prepare(view, a, **kwargs)          # refresh a
        cache.prepare(view, c, **kwargs)          # evicts b, not a
        before = cache.stats.snapshot()
        cache.prepare(view, a, **kwargs)
        assert cache.stats.delta(before).hits == 1
        before = cache.stats.snapshot()
        cache.prepare(view, b, **kwargs)
        assert cache.stats.delta(before).misses == 1

    def test_build_seconds_zero_on_hit(self, dataset):
        view, balls = self._view_and_balls(dataset, count=1)
        cache = CMMCache()
        kwargs = dict(enumeration_limit=2000, cmm_bound_bypass=2000)
        cache.prepare(view, balls[0], **kwargs)
        assert cache.last_build_seconds > 0
        cache.prepare(view, balls[0], **kwargs)
        assert cache.last_build_seconds == 0.0

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError, match="weight"):
            CMMCache(max_weight=0)

    def test_shared_stats_instance(self, dataset):
        view, balls = self._view_and_balls(dataset, count=1)
        shared = CacheStats()
        cache = CMMCache(stats=shared)
        cache.prepare(view, balls[0], enumeration_limit=2000,
                      cmm_bound_bypass=2000)
        assert shared.misses == 1


class TestSignatures:
    def test_user_and_sp_signatures_agree(self, dataset, test_config):
        """The cache key the engine builds from the SP-side message must
        equal the grouping key the server builds from the query."""
        query = dataset.random_queries(1, size=4, diameter=2, seed=13)[0]
        engine = Prilo.setup(dataset.graph, test_config)
        batch = QueryBatchEngine(engine)
        batch.serve([query])
        expected = enumeration_signature(
            query, enumeration_limit=test_config.enumeration_limit,
            cmm_bound_bypass=test_config.cmm_bound_bypass)
        signatures = {sig for _, sig in batch.cache._entries}
        assert signatures == {expected}

    def test_signature_of_view_matches(self, dataset, test_config):
        query = dataset.random_queries(1, size=4, diameter=2, seed=13)[0]
        view = QueryLabelView(
            labels=tuple(query.label(u) for u in query.vertex_order),
            diameter=query.diameter, semantics=query.semantics)
        assert signature_of_view(
            view, enumeration_limit=2000, cmm_bound_bypass=2000,
        ) == enumeration_signature(
            query, enumeration_limit=2000, cmm_bound_bypass=2000)

    def test_signature_distinguishes_bounds(self, dataset):
        query = dataset.random_queries(1, size=4, diameter=2, seed=13)[0]
        a = enumeration_signature(query, enumeration_limit=10,
                                  cmm_bound_bypass=2000)
        b = enumeration_signature(query, enumeration_limit=2000,
                                  cmm_bound_bypass=2000)
        assert a != b


class TestPreparedVerdicts:
    """prepare_ball must reproduce the streaming kernel's bypass logic."""

    def _view(self, dataset):
        query = dataset.random_queries(1, size=4, diameter=2, seed=13)[0]
        return QueryLabelView(
            labels=tuple(query.label(u) for u in query.vertex_order),
            diameter=query.diameter, semantics=query.semantics)

    def _some_ball(self, dataset, view):
        from repro.graph.ball import BallIndex

        index = BallIndex(dataset.graph, (2,))
        for center in dataset.graph.vertices():
            ball = index.ball(center, 2)
            prepared = prepare_ball(view, ball, enumeration_limit=2000,
                                    cmm_bound_bypass=2000)
            if prepared.enumerated > 1:
                return ball, prepared
        pytest.skip("no multi-CMM ball in the tiny dataset")

    def test_truncation(self, dataset):
        view = self._view(dataset)
        ball, full = self._some_ball(dataset, view)
        limit = full.enumerated - 1
        truncated = prepare_ball(view, ball, enumeration_limit=limit,
                                 cmm_bound_bypass=2000)
        assert truncated.truncated
        assert truncated.bypassed
        assert truncated.enumerated == limit
        assert truncated.patterns == ()

    def test_bound_bypass(self, dataset):
        view = self._view(dataset)
        ball, _ = self._some_ball(dataset, view)
        bypassed = prepare_ball(view, ball, enumeration_limit=2000,
                                cmm_bound_bypass=0)
        assert bypassed.bound_bypassed
        assert bypassed.enumerated == 0

    def test_pattern_indices_cover_order(self, dataset):
        view = self._view(dataset)
        _, prepared = self._some_ball(dataset, view)
        assert len(prepared.pattern_of_cmm) == prepared.enumerated
        assert set(prepared.pattern_of_cmm) == set(range(len(
            prepared.patterns)))
        assert prepared.weight == (len(prepared.pattern_of_cmm)
                                   + len(prepared.patterns))
