"""Tests for Alg. 1 (candidate enumeration) and its obliviousness."""

from repro.core.enumeration import (
    candidate_vertices,
    count_cmm_upper_bound,
    enumerate_cmms,
)
from repro.graph.ball import extract_ball
from repro.graph.query import Query, QueryLabelView


class TestCandidateVertices:
    def test_example4_cv_sets(self, fig3, fig3_ball):
        query, _ = fig3
        cv = candidate_vertices(query, fig3_ball)
        assert cv["u1"] == ["v6"]
        assert cv["u2"] == ["v2", "v4"]
        assert cv["u3"] == ["v1", "v5", "v7"]
        assert cv["u4"] == ["v1", "v5", "v7"]
        assert cv["u5"] == ["v3"]


class TestEnumeration:
    def test_fig3_count(self, fig3, fig3_ball):
        """1 * 2 * 3 * 3 * 1 = 18 assignments, all containing v6 (u1 must
        map to v6, the only B vertex)."""
        query, _ = fig3
        result = enumerate_cmms(query, fig3_ball)
        assert result.enumerated == 18
        assert not result.truncated
        assert not result.is_spurious

    def test_every_cmm_contains_center(self, fig3, fig3_ball):
        query, _ = fig3
        for cmm in enumerate_cmms(query, fig3_ball).cmms:
            assert cmm.uses("v6")

    def test_labels_respected(self, fig3, fig3_ball):
        query, _ = fig3
        ball = fig3_ball
        for cmm in enumerate_cmms(query, ball).cmms:
            for u, v in cmm.mapping().items():
                assert query.label(u) == ball.graph.label(v)

    def test_spurious_when_center_unmatchable(self, fig3):
        """Ball centered at v7 (label C): u3/u4 can map to it, so it is not
        spurious; ball centered on an A vertex whose label appears but that
        cannot host the center -- craft a query lacking the center label."""
        _, graph = fig3
        q = Query.from_edges({1: "B", 2: "A"}, [(2, 1)],
                             vertex_order=(1, 2))
        ball = extract_ball(graph, "v3", q.diameter)  # center label D
        result = enumerate_cmms(q, ball)
        assert result.is_spurious
        assert result.enumerated == 0

    def test_limit_truncates(self, fig3, fig3_ball):
        query, _ = fig3
        result = enumerate_cmms(query, fig3_ball, limit=5)
        assert result.truncated
        assert result.enumerated == 5
        assert not result.is_spurious

    def test_injective_subset(self, fig3, fig3_ball):
        query, _ = fig3
        plain = enumerate_cmms(query, fig3_ball)
        injective = enumerate_cmms(query, fig3_ball, injective=True)
        assert injective.enumerated < plain.enumerated
        assignments = {c.assignment for c in plain.cmms}
        for cmm in injective.cmms:
            assert cmm.assignment in assignments
            assert len(set(cmm.assignment)) == len(cmm.assignment)

    def test_query_obliviousness(self, fig3, fig3_ball):
        """Two queries with identical labels but different edges must
        produce identical CMM sets (App. A.2's proof, checked literally)."""
        query, _ = fig3
        labels = {u: query.label(u) for u in query.vertex_order}
        # Same labels, completely different connected structure.
        other = Query.from_edges(
            labels, [("u1", "u2"), ("u2", "u3"), ("u3", "u4"), ("u4", "u5")],
            vertex_order=query.vertex_order)
        a = enumerate_cmms(query, fig3_ball)
        b = enumerate_cmms(other, fig3_ball)
        assert [c.assignment for c in a.cmms] == [c.assignment
                                                  for c in b.cmms]

    def test_works_with_label_view(self, fig3, fig3_ball):
        """The Player-side label view yields the same assignments."""
        query, _ = fig3
        view = QueryLabelView.of(query)
        a = enumerate_cmms(query, fig3_ball)
        b = enumerate_cmms(view, fig3_ball)
        assert [c.assignment for c in a.cmms] == [c.assignment
                                                  for c in b.cmms]


class TestUpperBound:
    def test_bound_at_least_count(self, fig3, fig3_ball):
        query, _ = fig3
        result = enumerate_cmms(query, fig3_ball)
        assert count_cmm_upper_bound(query, fig3_ball) >= result.enumerated

    def test_fig3_bound_exact_product(self, fig3, fig3_ball):
        query, _ = fig3
        assert count_cmm_upper_bound(query, fig3_ball) == 1 * 2 * 3 * 3 * 1
