"""Shared fixtures: the Fig. 3 worked example, a small CGBE instance, and a
miniature dataset.  CGBE uses a 1024-bit modulus with 24-bit q/r in tests --
the same algebra as the paper's 4096/32/32 at a fraction of the cost."""

from __future__ import annotations

import pytest

from repro.crypto.cgbe import CGBE
from repro.framework.prilo import PriloConfig
from repro.graph.ball import extract_ball
from repro.graph.generators import fig3_graph, fig3_query
from repro.workloads.datasets import tiny_dataset


@pytest.fixture(scope="session")
def fig3():
    """(query, graph) of the paper's running example."""
    return fig3_query(), fig3_graph()


@pytest.fixture(scope="session")
def fig3_ball(fig3):
    query, graph = fig3
    return extract_ball(graph, "v6", query.diameter, ball_id=0)


@pytest.fixture(scope="session")
def cgbe():
    # 24-bit q keeps the factor-q test's false-violation probability
    # (~1/q per decrypted aggregate) negligible across the whole suite.
    return CGBE.generate(modulus_bits=1024, q_bits=24, r_bits=24, seed=7)


@pytest.fixture(scope="session")
def test_config():
    """Engine config sized for tests."""
    return PriloConfig(k_players=2, modulus_bits=1024, q_bits=24, r_bits=24,
                       radii=(1, 2, 3), seed=3)


@pytest.fixture(scope="session")
def dataset():
    return tiny_dataset(seed=2)
