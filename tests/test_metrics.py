"""Tests for timers, confusion counts (PPCR), and size accounting."""

import time

import pytest

from repro.framework.metrics import (
    ConfusionCounts,
    MessageSizes,
    PhaseTimings,
    Stopwatch,
    StopwatchError,
)


class TestStopwatch:
    def test_accumulates(self):
        watch = Stopwatch()
        with watch:
            time.sleep(0.01)
        first = watch.total
        with watch:
            time.sleep(0.01)
        assert watch.total > first >= 0.01

    def test_nested_entry_counts_outermost_interval_once(self):
        """Re-entering an already-running watch (streaming verification
        re-entering the evaluation timer) must not clobber the start
        stamp: the outer interval is counted once, whole."""
        watch = Stopwatch()
        with watch:
            time.sleep(0.01)
            with watch:
                time.sleep(0.01)
            # Inner exit must not stop the clock...
            time.sleep(0.01)
        # ...so the total covers all three sleeps, not just the tail.
        assert watch.total >= 0.03

    def test_sequential_after_nested_still_accumulates(self):
        watch = Stopwatch()
        with watch:
            with watch:
                time.sleep(0.01)
        first = watch.total
        assert first >= 0.01
        with watch:
            time.sleep(0.01)
        assert watch.total > first

    def test_unbalanced_exit_raises(self):
        watch = Stopwatch()
        with pytest.raises(StopwatchError):
            watch.__exit__(None, None, None)

    def test_exit_after_balanced_use_raises(self):
        watch = Stopwatch()
        with watch:
            pass
        with pytest.raises(StopwatchError):
            watch.__exit__(None, None, None)


class TestConfusionCounts:
    def test_record_all_cells(self):
        c = ConfusionCounts()
        c.record(True, True)    # tp
        c.record(True, False)   # fp
        c.record(False, False)  # tn
        c.record(False, True)   # fn
        assert (c.tp, c.fp, c.tn, c.fn) == (1, 1, 1, 1)
        assert c.total == 4
        assert c.ppcr == pytest.approx(0.5)
        assert c.pruned == 2

    def test_ppcr_definition(self):
        """PPCR = (TP + FP) / total (Sec. 6.3)."""
        c = ConfusionCounts(tp=3, fp=1, tn=5, fn=1)
        assert c.ppcr == pytest.approx(4 / 10)

    def test_empty_ppcr_zero(self):
        assert ConfusionCounts().ppcr == 0.0

    def test_addition(self):
        a = ConfusionCounts(tp=1, fp=2, tn=3, fn=0)
        b = ConfusionCounts(tp=1, fp=0, tn=1, fn=1)
        c = a + b
        assert (c.tp, c.fp, c.tn, c.fn) == (2, 2, 4, 1)


class TestMessageSizes:
    def test_directional_sums(self):
        sizes = MessageSizes()
        sizes.add("encrypted_matrix", 100)
        sizes.add("twiglet_tables", 50)
        sizes.add("bf_encodings", 25)
        sizes.add("pruning_messages", 10)
        sizes.add("ciphertext_results", 20)
        sizes.add("retrieved_balls", 5)
        assert sizes.user_to_sp() == 175
        assert sizes.sp_to_user() == 35


class TestPhaseTimings:
    def test_total(self):
        t = PhaseTimings(user_preprocessing=1.0, pm_computation=2.0,
                         evaluation=3.0)
        assert t.total() == pytest.approx(6.0)
