"""Round-trip tests for graph serialization."""

from repro.graph.ball import extract_ball
from repro.graph.generators import fig3_graph, power_law_graph
from repro.graph.io import (
    ball_from_bytes,
    ball_to_bytes,
    dump_edge_list,
    graph_from_json,
    graph_to_json,
    load_edge_list,
)


class TestEdgeList:
    def test_roundtrip_string_ids(self, tmp_path):
        g = fig3_graph()
        path = tmp_path / "g.txt"
        dump_edge_list(g, path)
        assert load_edge_list(path) == g

    def test_roundtrip_int_ids(self, tmp_path):
        g = power_law_graph(40, 2, 5, seed=1)
        path = tmp_path / "g.txt"
        dump_edge_list(g, path)
        loaded = load_edge_list(path)
        assert loaded == g
        # Identifier types survive (ints stay ints).
        assert all(isinstance(v, int) for v in loaded.vertices())

    def test_comment_lines_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# a comment\n# vertex 1 'A'\n# vertex 2 'B'\n1 2\n")
        g = load_edge_list(path)
        assert g.num_vertices == 2
        assert g.has_edge(1, 2)


class TestJson:
    def test_roundtrip(self):
        g = fig3_graph()
        assert graph_from_json(graph_to_json(g)) == g

    def test_canonical(self):
        g = fig3_graph()
        assert graph_to_json(g) == graph_to_json(g.copy())


class TestBallBytes:
    def test_roundtrip(self):
        g = fig3_graph()
        ball = extract_ball(g, "v6", 2, ball_id=17)
        restored = ball_from_bytes(ball_to_bytes(ball))
        assert restored.ball_id == 17
        assert restored.center == "v6"
        assert restored.radius == 2
        assert restored.graph == ball.graph
