"""Brute-force cross-validation of the feature enumerators.

Twiglet and tree enumeration are soundness-critical: a feature the DFS
misses on the ball side becomes a wrongly-claimed violation and could
prune a true positive.  These tests rebuild both enumerations from first
principles (itertools over all vertex tuples) and compare exhaustively on
random graphs.
"""

from itertools import combinations, permutations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoding import LabelCodec
from repro.core.trees import BF_TOPOLOGIES, iter_center_trees
from repro.core.twiglets import Twiglet, twiglets_from
from repro.graph.generators import uniform_random_graph
from repro.graph.labeled_graph import LabeledGraph


def brute_force_twiglets(graph: LabeledGraph, start, h: int,
                         alphabet) -> set[Twiglet]:
    """All twiglets from ``start`` by checking every vertex tuple."""
    allowed = {repr(l) for l in alphabet}
    vertices = list(graph.vertices())

    def key(v):
        return repr(graph.label(v))

    def ok_labels(path_vertices):
        keys = [key(v) for v in path_vertices]
        return (len(set(keys)) == len(keys)
                and all(k in allowed for k in keys))

    def adjacent(u, v):
        return graph.has_edge(u, v) or graph.has_edge(v, u)

    found: set[Twiglet] = set()
    # Plain paths with i labels, 3 <= i <= h.
    for i in range(3, h + 1):
        for tail in permutations([v for v in vertices if v != start],
                                 i - 1):
            chain = (start,) + tail
            if not ok_labels(chain):
                continue
            if all(adjacent(chain[j], chain[j + 1])
                   for j in range(len(chain) - 1)):
                found.add(Twiglet(path=tuple(key(v) for v in chain)))
    # Forked twiglets: path part of 2..h-1 vertices plus a fork pair.
    for plen in range(2, h):
        for tail in permutations([v for v in vertices if v != start],
                                 plen - 1):
            chain = (start,) + tail
            if not ok_labels(chain):
                continue
            if not all(adjacent(chain[j], chain[j + 1])
                       for j in range(len(chain) - 1)):
                continue
            end = chain[-1]
            for a, b in combinations(
                    [v for v in vertices if v not in chain], 2):
                if not (adjacent(end, a) and adjacent(end, b)):
                    continue
                full = chain + (a, b)
                if not ok_labels(full):
                    continue
                if key(a) == key(b):
                    continue
                fork = tuple(sorted((key(a), key(b))))
                found.add(Twiglet(path=tuple(key(v) for v in chain),
                                  fork=fork))
    return found


def brute_force_tree_encodings(graph: LabeledGraph, root,
                               codec: LabelCodec) -> set[int]:
    """All topology vii-x encodings at ``root`` by brute force."""
    from repro.core.trees import canonical_tree

    def adjacent(u, v):
        return graph.has_edge(u, v) or graph.has_edge(v, u)

    def lab(v):
        return graph.label(v)

    vertices = list(graph.vertices())
    neighbors = [v for v in vertices if adjacent(root, v)]
    encodings: set[int] = set()
    for topology in BF_TOPOLOGIES:
        for u, v in permutations(neighbors, 2):
            labels = {lab(root), lab(u), lab(v)}
            if len(labels) != 3:
                continue
            if lab(u) not in codec or lab(v) not in codec:
                continue
            u_kids = {lab(w) for w in vertices
                      if adjacent(u, w) and lab(w) not in labels
                      and lab(w) in codec}
            for lg in combinations(sorted(u_kids, key=repr),
                                   topology.left_grandchildren):
                used = labels | set(lg)
                v_kids = {lab(w) for w in vertices
                          if adjacent(v, w) and lab(w) not in used
                          and lab(w) in codec}
                for rg in combinations(sorted(v_kids, key=repr),
                                       topology.right_grandchildren):
                    tree = canonical_tree(topology, codec, lab(u), lab(v),
                                          lg, rg)
                    encodings.add(tree.encode(codec))
    return encodings


class TestTwigletCompleteness:
    @given(st.integers(0, 10 ** 6), st.integers(3, 4))
    @settings(max_examples=25, deadline=None)
    def test_dfs_equals_brute_force(self, seed, h):
        graph = uniform_random_graph(9, 14, 5, seed=seed)
        alphabet = graph.alphabet
        start = sorted(graph.vertices())[seed % 9]
        fast = twiglets_from(graph, start, h, alphabet)
        slow = brute_force_twiglets(graph, start, h, alphabet)
        assert fast == slow, (
            f"missing={sorted(t.render() for t in slow - fast)[:3]} "
            f"extra={sorted(t.render() for t in fast - slow)[:3]}")


class TestTreeCompleteness:
    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=25, deadline=None)
    def test_enumeration_equals_brute_force(self, seed):
        graph = uniform_random_graph(10, 18, 6, seed=seed)
        codec = LabelCodec.from_alphabet(graph.alphabet)
        root = sorted(graph.vertices())[seed % 10]
        fast = {t.encode(codec)
                for t in iter_center_trees(graph, root, codec)}
        slow = brute_force_tree_encodings(graph, root, codec)
        assert fast == slow
