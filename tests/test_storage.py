"""Tests for the encrypted ball archive."""

import json

import pytest

from repro.crypto.keys import DataOwnerKey
from repro.framework.roles import Dealer
from repro.graph.ball import BallIndex
from repro.graph.generators import fig3_graph
from repro.graph.io import ball_from_bytes
from repro.storage import ArchiveError, EncryptedBallArchive


@pytest.fixture()
def key():
    return DataOwnerKey.generate(seed=4)


@pytest.fixture()
def index():
    return BallIndex(fig3_graph(), (1, 2))


class TestCreateAndOpen:
    def test_roundtrip(self, tmp_path, index, key):
        created = EncryptedBallArchive.create(tmp_path / "a", index, key)
        assert len(created) == 7 * 2
        opened = EncryptedBallArchive.open(tmp_path / "a")
        assert sorted(opened.ball_ids) == sorted(created.ball_ids)

    def test_blobs_decrypt_to_balls(self, tmp_path, index, key):
        archive = EncryptedBallArchive.create(tmp_path / "a", index, key)
        ball = index.ball("v6", 2)
        blob = archive.get(ball.ball_id)
        restored = ball_from_bytes(key.cipher().decrypt(blob.blob))
        assert restored.center == "v6"
        assert restored.graph == ball.graph

    def test_radius_subset(self, tmp_path, index, key):
        archive = EncryptedBallArchive.create(tmp_path / "a", index, key,
                                              radii=(1,))
        assert len(archive) == 7
        assert all(entry["radius"] == 1 for entry in archive.entries())

    def test_unknown_radius_rejected(self, tmp_path, index, key):
        with pytest.raises(ArchiveError, match="radii"):
            EncryptedBallArchive.create(tmp_path / "a", index, key,
                                        radii=(9,))

    def test_refuses_overwrite(self, tmp_path, index, key):
        EncryptedBallArchive.create(tmp_path / "a", index, key)
        with pytest.raises(ArchiveError, match="overwrite"):
            EncryptedBallArchive.create(tmp_path / "a", index, key)

    def test_open_missing(self, tmp_path):
        with pytest.raises(ArchiveError, match="manifest"):
            EncryptedBallArchive.open(tmp_path / "nope")

    def test_open_bad_version(self, tmp_path, index, key):
        EncryptedBallArchive.create(tmp_path / "a", index, key)
        manifest = tmp_path / "a" / "manifest.json"
        data = json.loads(manifest.read_text())
        data["version"] = 99
        manifest.write_text(json.dumps(data))
        with pytest.raises(ArchiveError, match="version"):
            EncryptedBallArchive.open(tmp_path / "a")


class TestManifestPrivacy:
    def test_manifest_contains_no_plaintext_structure(self, tmp_path,
                                                      index, key):
        """The Dealer-visible manifest lists public metadata only -- no
        edges, no labels."""
        EncryptedBallArchive.create(tmp_path / "a", index, key)
        manifest = json.loads(
            (tmp_path / "a" / "manifest.json").read_text())
        for entry in manifest["balls"]:
            assert set(entry) == {"ball_id", "center", "radius",
                                  "vertices", "bytes"}


class TestIntegrity:
    def test_verify_clean(self, tmp_path, index, key):
        archive = EncryptedBallArchive.create(tmp_path / "a", index, key)
        assert archive.verify(key) == len(archive)

    def test_verify_detects_tampering(self, tmp_path, index, key):
        archive = EncryptedBallArchive.create(tmp_path / "a", index, key)
        victim = next(iter(archive.ball_ids))
        path = tmp_path / "a" / "balls" / f"{victim}.bin"
        data = bytearray(path.read_bytes())
        data[25] ^= 0xFF
        path.write_bytes(bytes(data))
        fresh = EncryptedBallArchive.open(tmp_path / "a")
        with pytest.raises(ArchiveError, match="verification"):
            fresh.verify(key)

    def test_missing_ball(self, tmp_path, index, key):
        archive = EncryptedBallArchive.create(tmp_path / "a", index, key)
        with pytest.raises(ArchiveError, match="not in archive"):
            archive.get(10 ** 9)


class TestDealerIntegration:
    def test_dealer_backed_by_archive(self, tmp_path, index, key):
        """An archive satisfies the Dealer's store protocol."""
        archive = EncryptedBallArchive.create(tmp_path / "a", index, key)
        dealer = Dealer(archive)
        ball = index.ball("v2", 2)
        blob = dealer.fetch_encrypted_ball(ball.ball_id)
        restored = ball_from_bytes(key.cipher().decrypt(blob.blob))
        assert restored.center == "v2"


class TestDataOwnerExport:
    def test_export_archive(self, tmp_path):
        from repro.framework.roles import DataOwner
        from repro.graph.generators import fig3_graph

        owner = DataOwner(fig3_graph(), radii=(1, 2), seed=3)
        archive = owner.export_archive(tmp_path / "export", radii=(2,))
        assert len(archive) == 7
        assert archive.verify(owner.key) == 7
