"""Unit and property tests for balls and the ball index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.ball import Ball, BallIndex, extract_ball
from repro.graph.generators import fig3_graph, power_law_graph


class TestExtraction:
    def test_radius_zero_is_center_only(self):
        g = fig3_graph()
        ball = extract_ball(g, "v6", 0)
        assert ball.size == 1
        assert set(ball.graph.vertices()) == {"v6"}

    def test_fig3_radius3_covers_graph(self):
        g = fig3_graph()
        ball = extract_ball(g, "v6", 3)
        assert ball.size == 7  # every vertex is within 3 undirected hops

    def test_ball_members_within_radius(self):
        g = power_law_graph(120, 2, 8, seed=1)
        ball = extract_ball(g, 5, 2)
        distances = g.undirected_distances(5)
        for v in ball.graph.vertices():
            assert distances[v] <= 2

    def test_ball_is_induced(self):
        g = fig3_graph()
        ball = extract_ball(g, "v6", 2)
        for u in ball.graph.vertices():
            for v in ball.graph.vertices():
                assert ball.graph.has_edge(u, v) == g.has_edge(u, v)

    def test_center_must_be_member(self):
        g = fig3_graph()
        with pytest.raises(ValueError, match="center"):
            Ball(graph=g.induced_subgraph(["v1"]), center="v6", radius=1)

    def test_negative_radius_rejected(self):
        g = fig3_graph()
        with pytest.raises(ValueError, match="radius"):
            extract_ball(g, "v6", -1)

    def test_center_label(self):
        ball = extract_ball(fig3_graph(), "v6", 1)
        assert ball.center_label == "B"


class TestBallIndex:
    def test_ids_are_dense_and_stable(self):
        g = fig3_graph()
        index = BallIndex(g, (1, 2))
        assert len(index) == g.num_vertices * 2
        ids = {index.ball_id(v, r) for v in g.vertices() for r in (1, 2)}
        assert ids == set(range(len(index)))

    def test_ball_memoized(self):
        index = BallIndex(fig3_graph(), (2,))
        assert index.ball("v6", 2) is index.ball("v6", 2)

    def test_ball_by_id_roundtrip(self):
        index = BallIndex(fig3_graph(), (1, 3))
        ball = index.ball("v2", 3)
        assert index.ball_by_id(ball.ball_id) is ball

    def test_ball_by_unknown_id(self):
        index = BallIndex(fig3_graph(), (1,))
        with pytest.raises(KeyError):
            index.ball_by_id(10 ** 9)

    def test_candidate_balls_prop1(self):
        """Prop. 1: only balls whose center carries the label, at d_Q."""
        g = fig3_graph()
        index = BallIndex(g, (3,))
        candidates = list(index.candidate_balls("C", 3))
        assert {b.center for b in candidates} == {"v1", "v5", "v7"}
        assert all(b.radius == 3 for b in candidates)
        assert index.candidate_count("C", 3) == 3

    def test_unknown_radius(self):
        index = BallIndex(fig3_graph(), (1,))
        with pytest.raises(KeyError):
            list(index.candidate_balls("C", 2))
        with pytest.raises(KeyError):
            index.ball("v6", 9)

    def test_materialize(self):
        index = BallIndex(fig3_graph(), (1,))
        assert index.materialize() == 7

    def test_empty_radii_rejected(self):
        with pytest.raises(ValueError):
            BallIndex(fig3_graph(), ())


class TestBallProperties:
    @given(st.integers(0, 3), st.integers(0, 119))
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_radius(self, radius, center):
        g = power_law_graph(120, 2, 6, seed=3)
        small = extract_ball(g, center, radius)
        big = extract_ball(g, center, radius + 1)
        assert set(small.graph.vertices()) <= set(big.graph.vertices())

    @given(st.integers(0, 119))
    @settings(max_examples=40, deadline=None)
    def test_ball_connected(self, center):
        g = power_law_graph(120, 2, 6, seed=3)
        ball = extract_ball(g, center, 2)
        assert ball.graph.is_connected()
