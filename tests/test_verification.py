"""Tests for Alg. 2 (query verification), plaintext and ciphertext."""

from repro.core.encoding import encrypt_query_matrix
from repro.core.enumeration import enumerate_cmms
from repro.core.verification import (
    decide_ball,
    verification_plan,
    verify_ball,
    verify_ciphertext,
    verify_plaintext,
)
from repro.crypto.cgbe import CGBE
from repro.graph.ball import extract_ball
from repro.graph.matrix import CandidateMappingMatrix
from repro.semantics.evaluate import ball_contains_match
from repro.semantics.hom import find_homomorphisms


PAPER_CMM = CandidateMappingMatrix(
    query_order=("u1", "u2", "u3", "u4", "u5"),
    assignment=("v6", "v2", "v5", "v5", "v3"))

BAD_CMM = CandidateMappingMatrix(
    query_order=("u1", "u2", "u3", "u4", "u5"),
    assignment=("v6", "v4", "v5", "v5", "v3"))  # v4 lacks the needed edges


class TestPlaintextVerify:
    def test_example5_valid_cmm_returns_one(self, fig3, fig3_ball):
        """Example 5: for the paper's CMM, r = 1 (no violation)."""
        query, _ = fig3
        assert verify_plaintext(query, 97, fig3_ball, PAPER_CMM) == 1

    def test_invalid_cmm_has_factor_q(self, fig3, fig3_ball):
        query, _ = fig3
        r = verify_plaintext(query, 97, fig3_ball, BAD_CMM)
        assert r % 97 == 0

    def test_agrees_with_hom_matcher(self, fig3, fig3_ball):
        """Alg. 2 validity == Def. 1 match-function validity, per CMM."""
        query, _ = fig3
        ball = fig3_ball
        matches = {tuple(m[u] for u in query.vertex_order)
                   for m in find_homomorphisms(query, ball.graph)}
        for cmm in enumerate_cmms(query, ball).cmms:
            valid = verify_plaintext(query, 97, ball, cmm) % 97 != 0
            assert valid == (cmm.assignment in matches)


class TestCiphertextVerify:
    def test_per_cmm_agrees_with_plaintext(self, fig3, fig3_ball, cgbe):
        query, _ = fig3
        enc = encrypt_query_matrix(cgbe, query)
        plan = verification_plan(cgbe.params, query)
        c_one = cgbe.encrypt_one()
        for cmm in enumerate_cmms(query, fig3_ball).cmms:
            chunks = verify_ciphertext(cgbe.params, enc, c_one, fig3_ball,
                                       cmm, plan)
            secure_valid = all(not cgbe.has_factor_q(c) for c in chunks)
            plain_valid = verify_plaintext(query, cgbe.params.q, fig3_ball,
                                           cmm) % cgbe.params.q != 0
            assert secure_valid == plain_valid

    def test_constant_power_per_cmm(self, fig3, fig3_ball, cgbe):
        """Every CMM product carries the same g^x power (required for the
        Alg. 3 sum and the access-pattern argument)."""
        query, _ = fig3
        enc = encrypt_query_matrix(cgbe, query)
        plan = verification_plan(cgbe.params, query)
        c_one = cgbe.encrypt_one()
        powers = set()
        for cmm in enumerate_cmms(query, fig3_ball).cmms[:6]:
            chunks = verify_ciphertext(cgbe.params, enc, c_one, fig3_ball,
                                       cmm, plan)
            powers.add(tuple(c.power for c in chunks))
        assert len(powers) == 1

    def test_ball_aggregate_positive(self, fig3, fig3_ball, cgbe):
        query, _ = fig3
        enc = encrypt_query_matrix(cgbe, query)
        plan = verification_plan(cgbe.params, query)
        cmms = enumerate_cmms(query, fig3_ball).cmms
        verdict = verify_ball(cgbe.params, enc, cgbe.encrypt_one(),
                              fig3_ball, cmms, plan)
        assert decide_ball(cgbe, verdict)
        assert verdict.summed is not None

    def test_ball_without_match_negative(self, fig3, cgbe):
        query, graph = fig3
        ball = extract_ball(graph, "v1", query.diameter, ball_id=5)
        enc = encrypt_query_matrix(cgbe, query)
        plan = verification_plan(cgbe.params, query)
        cmms = enumerate_cmms(query, ball).cmms
        verdict = verify_ball(cgbe.params, enc, cgbe.encrypt_one(), ball,
                              cmms, plan)
        assert decide_ball(cgbe, verdict) == ball_contains_match(query, ball)

    def test_empty_cmm_set_is_negative(self, fig3, fig3_ball, cgbe):
        query, _ = fig3
        plan = verification_plan(cgbe.params, query)
        verdict = verify_ball(cgbe.params,
                              encrypt_query_matrix(cgbe, query),
                              cgbe.encrypt_one(), fig3_ball, [], plan)
        assert verdict.empty
        assert not decide_ball(cgbe, verdict)

    def test_bypassed_is_positive(self, fig3, fig3_ball, cgbe):
        query, _ = fig3
        plan = verification_plan(cgbe.params, query)
        verdict = verify_ball(cgbe.params,
                              encrypt_query_matrix(cgbe, query),
                              cgbe.encrypt_one(), fig3_ball, [], plan,
                              bypassed=True)
        assert verdict.bypassed
        assert decide_ball(cgbe, verdict)


class TestChunkedMode:
    def test_small_modulus_forces_chunks_and_stays_correct(self, fig3,
                                                           fig3_ball):
        """With a modulus too small to hold 20 factors, the plan chunks and
        the per-CMM layout still decides correctly."""
        query, _ = fig3
        small = CGBE.generate(modulus_bits=256, q_bits=16, r_bits=16,
                              seed=3)
        plan = verification_plan(small.params, query, expected_terms=4)
        assert not plan.summable
        assert plan.chunks_per_item > 1
        enc = encrypt_query_matrix(small, query)
        cmms = enumerate_cmms(query, fig3_ball).cmms
        verdict = verify_ball(small.params, enc, small.encrypt_one(),
                              fig3_ball, cmms, plan)
        assert verdict.per_item is not None
        assert decide_ball(small, verdict)  # the ball does contain a match

    def test_plan_layout_fields(self, fig3, cgbe):
        query, _ = fig3
        plan = verification_plan(cgbe.params, query)
        assert plan.factors == query.size * (query.size - 1)
        assert plan.summable
        assert plan.chunks_per_item == 1
