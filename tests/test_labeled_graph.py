"""Unit tests for the LabeledGraph substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.labeled_graph import LabeledGraph


def build_path(n: int) -> LabeledGraph:
    labels = {i: f"l{i}" for i in range(n)}
    edges = [(i, i + 1) for i in range(n - 1)]
    return LabeledGraph.from_edges(labels, edges)


class TestConstruction:
    def test_add_vertex_and_edge(self):
        g = LabeledGraph()
        g.add_vertex(1, "A")
        g.add_vertex(2, "B")
        g.add_edge(1, 2)
        assert g.num_vertices == 2
        assert g.num_edges == 1
        assert g.has_edge(1, 2)
        assert not g.has_edge(2, 1)

    def test_readd_vertex_same_label_is_noop(self):
        g = LabeledGraph()
        g.add_vertex(1, "A")
        g.add_vertex(1, "A")
        assert g.num_vertices == 1

    def test_relabel_rejected(self):
        g = LabeledGraph()
        g.add_vertex(1, "A")
        with pytest.raises(ValueError, match="relabel"):
            g.add_vertex(1, "B")

    def test_self_loop_rejected(self):
        g = LabeledGraph()
        g.add_vertex(1, "A")
        with pytest.raises(ValueError, match="self loop"):
            g.add_edge(1, 1)

    def test_edge_to_unknown_vertex(self):
        g = LabeledGraph()
        g.add_vertex(1, "A")
        with pytest.raises(KeyError):
            g.add_edge(1, 2)
        with pytest.raises(KeyError):
            g.add_edge(2, 1)

    def test_parallel_edges_collapse(self):
        g = LabeledGraph()
        g.add_vertex(1, "A")
        g.add_vertex(2, "A")
        g.add_edge(1, 2)
        g.add_edge(1, 2)
        assert g.num_edges == 1


class TestAccessors:
    def test_label_index(self):
        g = LabeledGraph.from_edges({1: "A", 2: "A", 3: "B"}, [(1, 3)])
        assert g.vertices_with_label("A") == {1, 2}
        assert g.label_frequency("A") == 2
        assert g.label_frequency("missing") == 0
        assert g.alphabet == {"A", "B"}

    def test_neighbors_union_directions(self):
        g = LabeledGraph.from_edges({1: "A", 2: "B", 3: "C"},
                                    [(1, 2), (3, 1)])
        assert g.neighbors(1) == {2, 3}
        assert g.successors(1) == {2}
        assert g.predecessors(1) == {3}
        assert g.degree(1) == 2
        assert g.out_degree(1) == 1
        assert g.in_degree(1) == 1

    def test_degree_counts_distinct_neighbors(self):
        # A reciprocal pair is one undirected neighbor.
        g = LabeledGraph.from_edges({1: "A", 2: "B"}, [(1, 2), (2, 1)])
        assert g.degree(1) == 1
        assert g.max_degree() == 1

    def test_max_degree_empty(self):
        assert LabeledGraph().max_degree() == 0


class TestMetric:
    def test_distances_are_undirected(self):
        g = LabeledGraph.from_edges({1: "A", 2: "B", 3: "C"},
                                    [(2, 1), (2, 3)])
        d = g.undirected_distances(1)
        assert d == {1: 0, 2: 1, 3: 2}

    def test_distance_cutoff(self):
        g = build_path(6)
        d = g.undirected_distances(0, cutoff=2)
        assert set(d) == {0, 1, 2}

    def test_diameter_of_path(self):
        assert build_path(5).diameter() == 4

    def test_diameter_disconnected_raises(self):
        g = LabeledGraph.from_edges({1: "A", 2: "B"}, [])
        with pytest.raises(ValueError, match="disconnected"):
            g.diameter()

    def test_is_connected(self):
        assert build_path(4).is_connected()
        g = LabeledGraph.from_edges({1: "A", 2: "B"}, [])
        assert not g.is_connected()
        assert LabeledGraph().is_connected()

    def test_eccentricity(self):
        g = build_path(5)
        assert g.eccentricity(0) == 4
        assert g.eccentricity(2) == 2


class TestSubgraphs:
    def test_induced_subgraph_keeps_ids_and_inner_edges(self):
        g = LabeledGraph.from_edges(
            {1: "A", 2: "B", 3: "C"}, [(1, 2), (2, 3), (3, 1)])
        sub = g.induced_subgraph([1, 2])
        assert set(sub.vertices()) == {1, 2}
        assert sub.has_edge(1, 2)
        assert sub.num_edges == 1
        assert sub.label(1) == "A"

    def test_induced_subgraph_unknown_vertex(self):
        g = build_path(3)
        with pytest.raises(KeyError):
            g.induced_subgraph([0, 99])

    def test_copy_equality(self):
        g = build_path(4)
        assert g.copy() == g

    def test_equality_considers_edges(self):
        a = LabeledGraph.from_edges({1: "A", 2: "B"}, [(1, 2)])
        b = LabeledGraph.from_edges({1: "A", 2: "B"}, [])
        assert a != b


@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    labels = {i: draw(st.sampled_from("ABCD")) for i in range(n)}
    edges = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1))
        .filter(lambda e: e[0] != e[1]),
        max_size=30))
    return LabeledGraph.from_edges(labels, edges)


class TestProperties:
    @given(random_graphs())
    @settings(max_examples=60, deadline=None)
    def test_edge_count_matches_iteration(self, g):
        assert g.num_edges == len(list(g.edges()))

    @given(random_graphs())
    @settings(max_examples=60, deadline=None)
    def test_distances_symmetric(self, g):
        vertices = list(g.vertices())
        for u in vertices[:3]:
            du = g.undirected_distances(u)
            for v, dist in du.items():
                assert g.undirected_distances(v).get(u) == dist

    @given(random_graphs())
    @settings(max_examples=60, deadline=None)
    def test_induced_subgraph_is_subset(self, g):
        keep = [v for i, v in enumerate(sorted(g.vertices(), key=repr))
                if i % 2 == 0]
        sub = g.induced_subgraph(keep)
        for u, v in sub.edges():
            assert g.has_edge(u, v)
        assert set(sub.vertices()) == set(keep)
