"""Verifiable answers: Merkle-authenticated packs, per-query result
certificates, and the malicious-SP chaos tier.

The load-bearing assertions: (a) every mutation class a rogue shard can
apply -- forged matches, dropped balls, replayed verdicts -- is caught
by :class:`repro.framework.verify.AnswerVerifier` and attributed to the
right fault kind; (b) a gateway with one rogue shard surfaces ZERO
forged answers and recovers byte-identical answers from honest members,
across all three semantics and both engines; (c) an all-rogue fleet
withholds every answer (FORGED status, exit 6 through the CLI lattice)
rather than surfacing anything unverified.
"""

from __future__ import annotations

import json
from dataclasses import replace
from types import SimpleNamespace

import pytest

from repro.crypto.keys import DataOwnerKey
from repro.framework import wire
from repro.framework.faults import (
    INJECTABLE_KINDS,
    MALICIOUS_KINDS,
    VALID_KINDS,
    ChaosPolicy,
    FaultKind,
)
from repro.framework.gateway import Gateway
from repro.framework.placement import PlacementManifest
from repro.framework.prilo import Prilo, PriloConfig
from repro.framework.prilo_star import PriloStar
from repro.framework.server import QueryStatus
from repro.framework.shard import LocalCluster, make_shard_specs
from repro.framework.verify import (
    CERT_SCHEME,
    AnswerVerifier,
    Certifier,
    VerificationError,
)
from repro.graph.query import Semantics
from repro.storage import ArtifactStore, shard_split
from repro.storage.authenticate import (
    AuthError,
    MerkleTree,
    auth_key,
    catalog_digest,
    leaf_digest,
    verify_absent,
    verify_multiproof,
)
from repro.workloads.datasets import tiny_dataset

ENGINES = {"prilo": Prilo, "prilo-star": PriloStar}


@pytest.fixture(scope="module")
def dataset():
    return tiny_dataset(seed=0, num_vertices=120, num_labels=8)


@pytest.fixture(scope="module")
def vconfig():
    return PriloConfig(k_players=2, modulus_bits=1024, q_bits=24,
                       r_bits=24, radii=(3,), seed=6)


@pytest.fixture(scope="module")
def stores(dataset, vconfig, tmp_path_factory):
    """One authenticated store + 2-shard split per semantics, built
    lazily and cached (ssim uses a different graph than hom/sub-iso)."""
    cache: dict[Semantics, tuple] = {}

    def build(semantics: Semantics):
        if semantics not in cache:
            graph = dataset.graph_for(semantics)
            root = tmp_path_factory.mktemp(f"auth-{semantics.value}")
            store = ArtifactStore.create(
                root / "src", graph, vconfig.radii,
                DataOwnerKey.generate(vconfig.seed))
            shard_split(root / "src", root / "shards", 2)
            cache[semantics] = (store, root / "shards")
        return cache[semantics]

    return build


def _baseline(graph, config, queries, engine_cls):
    engine = engine_cls.setup(graph, config)
    try:
        return [wire.canonical_answer_of_result(engine.run(q))
                for q in queries]
    finally:
        engine.close()


# ---------------------------------------------------------------------------
# Merkle accumulator
# ---------------------------------------------------------------------------
class TestMerkle:
    LEAVES = {i: leaf_digest(b"k" * 32, i, b"blob%d" % i)
              for i in (1, 3, 5, 8, 13)}

    def test_root_is_deterministic_and_leaf_sensitive(self):
        a = MerkleTree(dict(self.LEAVES))
        b = MerkleTree(dict(reversed(list(self.LEAVES.items()))))
        assert a.root_hex == b.root_hex  # order-insensitive (sorted ids)
        tampered = dict(self.LEAVES)
        tampered[3] = leaf_digest(b"k" * 32, 3, b"other")
        assert MerkleTree(tampered).root_hex != a.root_hex

    def test_multiproof_round_trip_all_subsets(self):
        tree = MerkleTree(self.LEAVES)
        ids = sorted(self.LEAVES)
        for take in range(1, len(ids) + 1):
            subset = ids[:take]
            proven = verify_multiproof(tree.root_hex, tree.prove(subset))
            assert proven == {i: self.LEAVES[i] for i in subset}

    def test_multiproof_rejects_wrong_root_and_padded_siblings(self):
        tree = MerkleTree(self.LEAVES)
        proof = tree.prove([1, 8])
        with pytest.raises(AuthError):
            verify_multiproof("00" * 32, proof)
        padded = json.loads(json.dumps(proof))
        padded["siblings"]["9:9"] = "ab" * 32  # unused junk sibling
        with pytest.raises(AuthError):
            verify_multiproof(tree.root_hex, padded)

    def test_forged_leaf_fails_the_proof(self):
        tree = MerkleTree(self.LEAVES)
        proof = json.loads(json.dumps(tree.prove([5])))
        proof["leaves"]["5"] = leaf_digest(b"k" * 32, 5, b"forged")
        with pytest.raises(AuthError):
            verify_multiproof(tree.root_hex, proof)

    def test_absence_proofs(self):
        tree = MerkleTree(self.LEAVES)
        for absent in (0, 2, 4, 7, 21):
            assert verify_absent(tree.root_hex,
                                 tree.prove_absent(absent)) == absent
        with pytest.raises(AuthError):
            tree.prove_absent(5)  # present ball has no absence proof


# ---------------------------------------------------------------------------
# Store-side commitment (build time) and tamper sweep
# ---------------------------------------------------------------------------
class TestStoreAuth:
    def test_create_commits_a_consistent_auth_block(self, stores,
                                                    vconfig):
        store, _ = stores(Semantics.HOM)
        auth = store.auth
        assert auth is not None
        tree = MerkleTree.from_leaf_hexes(auth["leaves"])
        assert tree.root_hex == auth["root"]
        vkey = auth_key(DataOwnerKey.generate(vconfig.seed))
        assert catalog_digest(vkey, auth["catalog"]) == \
            auth["catalog_digest"]
        # The catalog partitions the ball space per radius.
        for radius in vconfig.radii:
            listed = sorted(b for ids in auth["catalog"][str(radius)]
                            .values() for b in ids)
            assert len(listed) == len(set(listed))

    def test_keyed_verify_catches_a_leaf_mismatch(self, stores, vconfig):
        store, _ = stores(Semantics.HOM)
        victim = next(iter(store.auth["leaves"]))
        original = store.auth["leaves"][victim]
        store.auth["leaves"][victim] = "0" * 64
        try:
            report = store.verify(DataOwnerKey.generate(vconfig.seed))
            assert report.tampered, \
                "a blob/leaf mismatch must count as tampering"
        finally:
            store.auth["leaves"][victim] = original

    def test_split_propagates_the_global_auth_block(self, stores,
                                                    vconfig):
        store, shards_dir = stores(Semantics.HOM)
        placement = PlacementManifest.read(shards_dir)
        assert placement.auth_root == store.auth["root"]
        assert placement.catalog_digest == store.auth["catalog_digest"]
        for member in placement.members:
            shard = ArtifactStore.open(shards_dir / f"shard-{member}")
            # The full GLOBAL block: orphaned balls that migrate here
            # after a death must still prove against committed leaves.
            assert shard.auth == store.auth

    def test_pre_pr8_placement_manifests_still_load(self, stores,
                                                    tmp_path):
        _, shards_dir = stores(Semantics.HOM)
        payload = json.loads((shards_dir / "placement.json").read_text())
        payload.pop("auth")
        (tmp_path / "placement.json").write_text(json.dumps(payload))
        legacy = PlacementManifest.read(tmp_path)
        assert legacy.auth_root == ""
        assert legacy.catalog == {}


# ---------------------------------------------------------------------------
# Certifier / AnswerVerifier units: every mutation class is caught
# ---------------------------------------------------------------------------
class TestCertificates:
    @pytest.fixture(scope="class")
    def served(self, dataset, vconfig, stores):
        """One honestly-certified verdict plus its verification context."""
        store, _ = stores(Semantics.HOM)
        query = dataset.random_query(size=5, seed=4)
        engine = Prilo.setup(dataset.graph, vconfig, store=store)
        try:
            result = engine.run(query)
            certifier = Certifier(store.auth, seed=vconfig.seed,
                                  config=engine.config,
                                  graph_digest=store.manifest_graph_digest)
            cert = certifier.certify(qid=7, shard_id=0, members=[0],
                                     prev_members=None, result=result)
            verifier = AnswerVerifier.from_store(store, seed=vconfig.seed,
                                                 config=engine.config)
        finally:
            engine.close()
        answer = wire.canonical_answer_of_result(result)
        verdict = {"t": "verdict", "qid": 7, "shard": 0,
                   "status": QueryStatus.OK, "cert": cert,
                   "candidates": answer["candidates"],
                   "pm_positive": answer["pm_positive"],
                   "verified": answer["verified"],
                   "matches": answer["matches"]}
        return SimpleNamespace(query=query, verdict=verdict,
                               verifier=verifier, certifier=certifier,
                               result=result)

    def _fresh(self, served):
        return json.loads(json.dumps(served.verdict))

    def _check(self, served, verdict, qid=7):
        return served.verifier.verify_verdict(
            qid=qid, shard_id=0, members=[0], prev_members=None,
            query=served.query, verdict=verdict)

    def test_honest_verdict_verifies(self, served):
        assert served.result.candidate_ids, "fixture query must have balls"
        proof_bytes = self._check(served, self._fresh(served))
        assert proof_bytes > 0
        assert served.verdict["cert"]["v"] == CERT_SCHEME

    def test_forged_match_is_caught(self, served):
        verdict = self._fresh(served)
        ball = verdict["verified"][0] if verdict["verified"] else \
            verdict["candidates"][0]
        verdict.setdefault("matches", {})
        if str(ball) not in verdict["verified"]:
            verdict["verified"] = sorted(set(verdict["verified"])
                                         | {ball})
            verdict["pm_positive"] = sorted(set(verdict["pm_positive"])
                                            | {ball})
        verdict["matches"][str(ball)] = ['"forged"']
        with pytest.raises(VerificationError) as err:
            self._check(served, verdict)
        assert err.value.kind == FaultKind.FORGE_RESULT

    def test_dropped_ball_is_caught_even_with_a_rebuilt_proof(self,
                                                              served):
        verdict = self._fresh(served)
        dropped = verdict["candidates"].pop()
        verdict["pm_positive"] = [b for b in verdict["pm_positive"]
                                  if b != dropped]
        verdict["verified"] = [b for b in verdict["verified"]
                               if b != dropped]
        verdict["matches"].pop(str(dropped), None)
        # The adversary CAN rebuild the (public) multiproof for the
        # narrowed set -- completeness against the committed catalog is
        # what catches the laziness.
        verdict["cert"]["proof"] = (
            served.certifier.tree.prove(verdict["candidates"])
            if verdict["candidates"] else None)
        with pytest.raises(VerificationError) as err:
            self._check(served, verdict)
        assert err.value.kind == FaultKind.DROP_BALL
        assert str(dropped) in str(err.value)

    def test_replayed_verdict_is_attributed_as_stale(self, served):
        with pytest.raises(VerificationError) as err:
            self._check(served, self._fresh(served), qid=8)
        assert err.value.kind == FaultKind.REPLAY_STALE

    def test_foreign_membership_is_attributed_as_stale(self, served):
        verdict = self._fresh(served)
        with pytest.raises(VerificationError) as err:
            served.verifier.verify_verdict(
                qid=7, shard_id=0, members=[0, 1], prev_members=None,
                query=served.query, verdict=verdict)
        assert err.value.kind == FaultKind.REPLAY_STALE

    def test_config_fingerprint_mismatch_is_stale(self, served, stores,
                                                  vconfig):
        store, _ = stores(Semantics.HOM)
        other = AnswerVerifier.from_store(
            store, seed=vconfig.seed,
            config=replace(vconfig, radii=(2,)))
        with pytest.raises(VerificationError) as err:
            other.verify_verdict(qid=7, shard_id=0, members=[0],
                                 prev_members=None, query=served.query,
                                 verdict=self._fresh(served))
        assert err.value.kind == FaultKind.REPLAY_STALE

    def test_missing_certificate_is_forgery(self, served):
        verdict = self._fresh(served)
        del verdict["cert"]
        with pytest.raises(VerificationError) as err:
            self._check(served, verdict)
        assert err.value.kind == FaultKind.FORGE_RESULT

    def test_containment_violation_is_forgery(self, served):
        verdict = self._fresh(served)
        alien = max(verdict["candidates"]) + 1000
        verdict["verified"] = sorted(verdict["verified"] + [alien])
        with pytest.raises(VerificationError) as err:
            self._check(served, verdict)
        assert err.value.kind == FaultKind.FORGE_RESULT

    def test_tampered_catalog_is_refused_at_construction(self, stores,
                                                         vconfig):
        store, _ = stores(Semantics.HOM)
        broken = json.loads(json.dumps(store.auth))
        radius = next(iter(broken["catalog"]))
        label = next(iter(broken["catalog"][radius]))
        broken["catalog"][radius][label] = []
        fake_store = SimpleNamespace(
            auth=broken, manifest_graph_digest=store.manifest_graph_digest)
        with pytest.raises(VerificationError) as err:
            AnswerVerifier.from_store(fake_store, seed=vconfig.seed,
                                      config=vconfig)
        assert err.value.kind == FaultKind.FORGE_RESULT

    def test_verifier_requires_an_auth_root(self):
        with pytest.raises(VerificationError):
            AnswerVerifier(root_hex="", catalog={}, vkey=b"k", jkey=b"j",
                           fingerprint="f")


# ---------------------------------------------------------------------------
# Malicious-SP kinds in the chaos vocabulary
# ---------------------------------------------------------------------------
class TestMaliciousKinds:
    def test_kinds_are_valid_but_not_injectable(self):
        for kind in (FaultKind.FORGE_RESULT, FaultKind.DROP_BALL,
                     FaultKind.REPLAY_STALE):
            assert kind in MALICIOUS_KINDS
            assert kind in VALID_KINDS
            # Never part of the default engine-side schedule: a rogue
            # shard is opt-in, like kill_process.
            assert kind not in INJECTABLE_KINDS

    def test_policy_accepts_malicious_kinds(self):
        policy = ChaosPolicy(seed=3, fault_rate=1.0,
                             kinds=MALICIOUS_KINDS)
        assert policy.decides(FaultKind.FORGE_RESULT, "shard1:q0")


# ---------------------------------------------------------------------------
# Gateway matrix: one rogue shard across 3 semantics x pruning
# ---------------------------------------------------------------------------
class TestRogueGateway:
    @pytest.mark.parametrize("semantics", list(Semantics))
    @pytest.mark.parametrize("engine", ["prilo", "prilo-star"])
    def test_one_rogue_shard_recovers_byte_identically(
            self, dataset, vconfig, stores, semantics, engine):
        _, shards_dir = stores(semantics)
        graph = dataset.graph_for(semantics)
        engine_cls = ENGINES[engine]
        queries = dataset.random_queries(3, size=5, semantics=semantics,
                                         seed=4)
        expected = _baseline(graph, vconfig, queries, engine_cls)
        placement = PlacementManifest.read(shards_dir)
        verifier = AnswerVerifier.from_placement(
            placement, seed=vconfig.seed,
            config=replace(vconfig, **engine_cls._OVERRIDES))
        specs = make_shard_specs(
            graph, vconfig, 2, engine=engine,
            store_root=str(shards_dir), rogue_shards=(1,),
            rogue_policy=ChaosPolicy(seed=5, fault_rate=1.0,
                                     kinds=MALICIOUS_KINDS))
        with LocalCluster(specs) as cluster:
            report = Gateway(cluster.handles, verifier=verifier).run(
                queries)
        assert report.verify_enabled
        assert report.forgeries_detected > 0, \
            "the rogue shard must have been caught lying"
        assert report.evictions == [1]
        assert report.forged == 0, "no forged answer may be surfaced"
        assert [o.status for o in report.outcomes] == \
            [QueryStatus.OK] * len(queries)
        for i, answer in enumerate(report.answers):
            assert wire.answer_bytes(answer) == \
                wire.answer_bytes(expected[i]), \
                f"query {i}: recovered answer diverges from baseline"

    def test_all_rogue_fleet_withholds_every_answer(self, dataset,
                                                    vconfig, stores):
        _, shards_dir = stores(Semantics.HOM)
        queries = dataset.random_queries(2, size=5, seed=4)
        verifier = AnswerVerifier.from_placement(
            PlacementManifest.read(shards_dir), seed=vconfig.seed,
            config=replace(vconfig, **Prilo._OVERRIDES))
        specs = make_shard_specs(
            dataset.graph, vconfig, 2, engine="prilo",
            store_root=str(shards_dir), rogue_shards=(0, 1),
            rogue_policy=ChaosPolicy(seed=5, fault_rate=1.0,
                                     kinds=(FaultKind.FORGE_RESULT,)))
        with LocalCluster(specs) as cluster:
            report = Gateway(cluster.handles, verifier=verifier).run(
                queries)
        assert report.forged == len(queries)
        assert all(o.status == QueryStatus.FORGED
                   for o in report.outcomes)
        assert all(answer is None for answer in report.answers), \
            "a forged answer leaked through the verifier"
        assert report.completed == 0
        assert len(report.outcomes) == len(queries), \
            "withheld queries must still terminate the batch"

    def test_honest_fleet_passes_verification_with_zero_forgeries(
            self, dataset, vconfig, stores):
        _, shards_dir = stores(Semantics.HOM)
        queries = dataset.random_queries(2, size=5, seed=4)
        expected = _baseline(dataset.graph, vconfig, queries, Prilo)
        verifier = AnswerVerifier.from_placement(
            PlacementManifest.read(shards_dir), seed=vconfig.seed,
            config=replace(vconfig, **Prilo._OVERRIDES))
        specs = make_shard_specs(dataset.graph, vconfig, 2,
                                 engine="prilo",
                                 store_root=str(shards_dir))
        with LocalCluster(specs) as cluster:
            report = Gateway(cluster.handles, verifier=verifier).run(
                queries)
        assert report.forgeries_detected == 0
        assert report.proofs_checked >= len(queries)
        assert report.proof_bytes > 0
        for i, answer in enumerate(report.answers):
            assert wire.answer_bytes(answer) == \
                wire.answer_bytes(expected[i])


# ---------------------------------------------------------------------------
# Exit-code lattice and the Prometheus verify counters
# ---------------------------------------------------------------------------
class TestExitLattice:
    def test_forged_ranks_between_leakage_and_integrity(self):
        from repro.cli import (
            EXIT_FORGED,
            EXIT_INTEGRITY,
            EXIT_LEAKAGE,
            combine_exit,
        )

        assert EXIT_FORGED == 6
        assert combine_exit(EXIT_LEAKAGE, EXIT_FORGED) == EXIT_FORGED
        assert combine_exit(EXIT_FORGED, EXIT_INTEGRITY) == EXIT_INTEGRITY
        assert combine_exit(0, EXIT_FORGED) == EXIT_FORGED
        assert combine_exit(EXIT_FORGED, 1) == 1

    def test_gateway_exit_code_folds_forged_over_deadline(self):
        from repro.cli import EXIT_FORGED, _gateway_exit_code

        report = SimpleNamespace(outcomes=[
            SimpleNamespace(status=QueryStatus.FORGED),
            SimpleNamespace(status=QueryStatus.DEADLINE_EXCEEDED),
            SimpleNamespace(status=QueryStatus.OK),
        ])
        assert _gateway_exit_code(report) == EXIT_FORGED
        honest = SimpleNamespace(outcomes=[
            SimpleNamespace(status=QueryStatus.OK)])
        assert _gateway_exit_code(honest) == 0


class TestVerifyMetrics:
    def test_gateway_prometheus_text_exports_verify_counters(self):
        from repro.observability import gateway_prometheus_text

        report = SimpleNamespace(summary=lambda: {
            "queries": 4, "shards": 2, "makespan_seconds": 0.5,
            "statuses": ["ok", "ok", "ok", "forged(result)"],
            "verify": {"enabled": True, "proofs_checked": 9,
                       "forgeries_detected": 2, "evictions": [1],
                       "forged_answers": 1, "proof_bytes": 1234,
                       "verify_seconds": 0.01}})
        text = gateway_prometheus_text(report)
        assert 'repro_verify_total{result="checked"} 9' in text
        assert 'repro_verify_total{result="forgery"} 2' in text
        assert 'repro_verify_total{result="evicted"} 1' in text
        assert 'repro_verify_total{result="withheld"} 1' in text
        assert 'repro_gateway_outcomes_total{status="forged(result)"} 1' \
            in text
        assert "repro_verify_proof_bytes_total 1234" in text
