"""Tests for the footnote-2 edge-label transformation."""

import pytest

from repro.graph.edge_labels import (
    EdgeLabeledGraph,
    edge_label,
    strip_match,
    transform_query,
)
from repro.graph.query import Semantics
from repro.semantics.hom import find_homomorphisms


@pytest.fixture()
def world():
    """Data graph: A -r-> B -s-> C plus a decoy A -t-> B."""
    data = EdgeLabeledGraph.from_edges(
        {1: "A", 2: "B", 3: "C", 4: "A"},
        {(1, 2): "r", (2, 3): "s", (4, 2): "t"})
    return data


class TestTransformation:
    def test_vertex_and_edge_counts(self, world):
        transformed = world.transform()
        assert transformed.num_vertices == 4 + 3  # originals + midpoints
        assert transformed.num_edges == 2 * 3

    def test_edge_labels_become_vertex_labels(self, world):
        transformed = world.transform()
        mids = [v for v in transformed.vertices()
                if transformed.label(v) == edge_label("r")]
        assert len(mids) == 1

    def test_distances_double(self, world):
        transformed = world.transform()
        d = transformed.undirected_distances(("v", 1))
        assert d[("v", 2)] == 2
        assert d[("v", 3)] == 4


class TestEdgeLabeledMatching:
    def test_edge_label_respected(self, world):
        """Query A -r-> B matches via vertex 1, not the t-labeled decoy."""
        pattern = EdgeLabeledGraph.from_edges(
            {"x": "A", "y": "B"}, {("x", "y"): "r"})
        query = transform_query(pattern, Semantics.HOM)
        matches = [strip_match(m) for m in
                   find_homomorphisms(query, world.transform())]
        assert {"x": 1, "y": 2} in matches
        assert {"x": 4, "y": 2} not in matches

    def test_wrong_edge_label_rejected(self, world):
        pattern = EdgeLabeledGraph.from_edges(
            {"x": "A", "y": "B"}, {("x", "y"): "s"})
        query = transform_query(pattern)
        assert find_homomorphisms(query, world.transform()) == []

    def test_two_hop_edge_labeled_path(self, world):
        pattern = EdgeLabeledGraph.from_edges(
            {"x": "A", "y": "B", "z": "C"},
            {("x", "y"): "r", ("y", "z"): "s"})
        query = transform_query(pattern)
        matches = [strip_match(m) for m in
                   find_homomorphisms(query, world.transform())]
        assert matches == [{"x": 1, "y": 2, "z": 3}]

    def test_strip_match_validates(self):
        with pytest.raises(ValueError):
            strip_match({("v", 1): ("e", 0, 1, 2)})


class TestEndToEndWithFramework:
    def test_transformed_query_runs_through_prilo(self, world):
        """The reduction composes with the full engine unchanged."""
        from repro.framework.prilo import Prilo, PriloConfig

        transformed = world.transform()
        pattern = EdgeLabeledGraph.from_edges(
            {"x": "A", "y": "B"}, {("x", "y"): "r"})
        query = transform_query(pattern)
        config = PriloConfig(k_players=2, modulus_bits=1024, q_bits=24,
                             r_bits=24, radii=(1, 2, 3, 4), seed=1)
        engine = Prilo.setup(transformed, config)
        result = engine.run(query)
        assert result.num_matches == 1
        (found,) = [m for ms in result.matches.values() for m in ms]
        # The matching subgraph is x -> (edge r) -> y over originals 1, 2.
        assert ("v", 1) in set(found.vertices())
        assert ("v", 2) in set(found.vertices())


class TestValidation:
    def test_endpoints_must_exist(self):
        graph = EdgeLabeledGraph()
        graph.add_vertex(1, "A")
        with pytest.raises(KeyError):
            graph.add_edge(1, 2, "r")

    def test_self_loop_rejected(self):
        graph = EdgeLabeledGraph()
        graph.add_vertex(1, "A")
        with pytest.raises(ValueError):
            graph.add_edge(1, 1, "r")

    def test_relabel_rejected(self):
        graph = EdgeLabeledGraph()
        graph.add_vertex(1, "A")
        with pytest.raises(ValueError):
            graph.add_vertex(1, "B")
