"""Tests for the QGen query generator."""

import pytest

from repro.graph.generators import social_graph
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.qgen import QGen
from repro.graph.query import Semantics
from repro.semantics.hom import has_homomorphism


@pytest.fixture(scope="module")
def graph():
    return social_graph(300, 3, 0.05, 12, seed=4)


class TestQGen:
    def test_size_and_connectivity(self, graph):
        qgen = QGen(graph, seed=1)
        q = qgen.generate(6, 3)
        assert q.size == 6
        assert q.pattern.is_connected()

    def test_diameter_at_most_requested(self, graph):
        qgen = QGen(graph, seed=2)
        for _ in range(5):
            q = qgen.generate(5, 2)
            assert q.pattern.diameter() <= 2

    def test_queries_are_induced_subgraphs_and_satisfiable(self, graph):
        """A QGen query always has at least one hom match (itself)."""
        qgen = QGen(graph, seed=3)
        q = qgen.generate(5, 3)
        assert has_homomorphism(q, graph)

    def test_semantics_propagated(self, graph):
        qgen = QGen(graph, seed=4)
        q = qgen.generate(4, 2, Semantics.SSIM)
        assert q.semantics is Semantics.SSIM

    def test_batch(self, graph):
        qgen = QGen(graph, seed=5)
        batch = qgen.generate_batch(4, 5, 3)
        assert len(batch) == 4

    def test_deterministic(self, graph):
        a = QGen(graph, seed=6).generate(5, 3)
        b = QGen(graph, seed=6).generate(5, 3)
        assert a.pattern == b.pattern

    def test_impossible_size_raises(self):
        tiny = LabeledGraph.from_edges({1: "A", 2: "B"}, [(1, 2)])
        qgen = QGen(tiny, seed=0, max_attempts=10)
        with pytest.raises(RuntimeError):
            qgen.generate(5, 2)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            QGen(LabeledGraph())

    def test_parameter_validation(self, graph):
        qgen = QGen(graph, seed=0)
        with pytest.raises(ValueError):
            qgen.generate(0, 2)
        with pytest.raises(ValueError):
            qgen.generate(3, -1)
