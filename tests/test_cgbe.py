"""Unit and property tests for CGBE (Sec. 2.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.cgbe import (
    CGBE,
    AggregationBudget,
    CGBECiphertext,
    OverflowError_,
    generate_prime,
    _is_probable_prime,
)
from repro.crypto.prng import seeded_rng


@pytest.fixture(scope="module")
def scheme():
    return CGBE.generate(modulus_bits=512, q_bits=16, r_bits=16, seed=1)


class TestPrimes:
    def test_known_primes(self):
        rng = seeded_rng("t")
        for p in (2, 3, 5, 97, 65537):
            assert _is_probable_prime(p, rng)
        for c in (1, 4, 91, 65536):
            assert not _is_probable_prime(c, rng)

    def test_generate_prime_bits(self):
        rng = seeded_rng("t2")
        p = generate_prime(20, rng)
        assert p.bit_length() == 20
        assert _is_probable_prime(p, rng)


class TestKeygen:
    def test_rfc3526_modulus_used_for_2048(self):
        scheme = CGBE.generate(modulus_bits=2048, seed=0)
        assert scheme.params.modulus_bits == 2048

    def test_q_is_prime_of_requested_size(self, scheme):
        assert scheme.params.q.bit_length() == 16

    def test_modulus_must_exceed_factor_size(self):
        with pytest.raises(ValueError, match="exceed"):
            CGBE.generate(modulus_bits=24, q_bits=16, r_bits=16, seed=0)

    def test_deterministic_given_seed(self):
        a = CGBE.generate(modulus_bits=256, seed=5)
        b = CGBE.generate(modulus_bits=256, seed=5)
        assert a.params == b.params


class TestHomomorphism:
    def test_multiply_preserves_q_factor(self, scheme):
        p = scheme.params
        c = CGBE.multiply(p, scheme.encrypt(1), scheme.encrypt_q())
        assert scheme.has_factor_q(c)

    def test_multiply_of_ones_has_no_q(self, scheme):
        p = scheme.params
        c = CGBE.multiply(p, scheme.encrypt_one(), scheme.encrypt_one())
        assert not scheme.has_factor_q(c)

    def test_decrypt_product_is_blinded_product(self, scheme):
        """D(E(m1) * E(m2)) = m1*m2*r1*r2: divisible by m1*m2."""
        p = scheme.params
        c = CGBE.multiply(p, scheme.encrypt(6), scheme.encrypt(35))
        assert scheme.decrypt(c) % (6 * 35) == 0

    def test_add_requires_equal_powers(self, scheme):
        p = scheme.params
        c1 = scheme.encrypt(1)
        c2 = CGBE.multiply(p, scheme.encrypt(1), scheme.encrypt(1))
        with pytest.raises(ValueError, match="powers"):
            CGBE.add(p, c1, c2)

    def test_sum_all_violations_keeps_q(self, scheme):
        p = scheme.params
        terms = [CGBE.multiply(p, scheme.encrypt_q(), scheme.encrypt(1))
                 for _ in range(8)]
        assert scheme.has_factor_q(CGBE.sum_(p, terms))

    def test_sum_with_one_valid_term_drops_q(self, scheme):
        p = scheme.params
        terms = [CGBE.multiply(p, scheme.encrypt_q(), scheme.encrypt(1))
                 for _ in range(7)]
        terms.append(CGBE.multiply(p, scheme.encrypt(1), scheme.encrypt(1)))
        assert not scheme.has_factor_q(CGBE.sum_(p, terms))

    def test_empty_aggregations_rejected(self, scheme):
        with pytest.raises(ValueError):
            CGBE.product(scheme.params, [])
        with pytest.raises(ValueError):
            CGBE.sum_(scheme.params, [])

    def test_power_equals_repeated_multiply(self, scheme):
        p = scheme.params
        c = scheme.encrypt(3)
        repeated = c
        for _ in range(4):
            repeated = CGBE.multiply(p, repeated, c)
        powered = CGBE.power(p, c, 5)
        assert powered.value == repeated.value
        assert powered.power == repeated.power
        assert powered.value_bits == repeated.value_bits

    def test_power_validation(self, scheme):
        with pytest.raises(ValueError):
            CGBE.power(scheme.params, scheme.encrypt(1), 0)
        with pytest.raises(OverflowError_):
            CGBE.power(scheme.params, scheme.encrypt(1), 10 ** 6)

    def test_product_groups_identical_objects(self, scheme):
        """Order-insensitive grouping: shuffled repeats give the same
        ciphertext value as sequential multiplication."""
        p = scheme.params
        c_one = scheme.encrypt_one()
        c_q = scheme.encrypt_q()
        factors = [c_one, c_q, c_one, c_one, c_q, c_one]
        grouped = CGBE.product(p, factors)
        sequential = factors[0]
        for c in factors[1:]:
            sequential = CGBE.multiply(p, sequential, c)
        assert grouped.value == sequential.value
        assert grouped.power == sequential.power


class TestOverflowBudget:
    def test_product_overflow_detected(self):
        scheme = CGBE.generate(modulus_bits=128, q_bits=16, r_bits=16,
                               seed=2)
        p = scheme.params
        acc = scheme.encrypt(1)
        with pytest.raises(OverflowError_):
            for _ in range(10):
                acc = CGBE.multiply(p, acc, scheme.encrypt(1))

    def test_budget_max_factors(self):
        budget = AggregationBudget(modulus_bits=1024, q_bits=32, r_bits=32)
        assert budget.bits_per_factor == 64
        assert budget.max_factors() == (1024 - 1) // 64
        # Reserving room for 2^10 summed terms costs 10 bits.
        assert budget.max_factors(terms=1024) == (1024 - 1 - 10) // 64

    def test_budget_max_terms(self):
        budget = AggregationBudget(modulus_bits=256, q_bits=32, r_bits=32)
        # 255 - 192 = 63 bits of headroom, clamped to the 2^62 safety cap.
        assert budget.max_terms(3) == 1 << 62
        assert budget.max_terms(4) == 0

    def test_budget_validation(self):
        budget = AggregationBudget(256, 32, 32)
        with pytest.raises(ValueError):
            budget.max_factors(terms=0)
        with pytest.raises(ValueError):
            budget.max_terms(0)

    def test_tree_sum_within_budget(self, scheme):
        """Balanced summation: 1000 terms cost ~10 bits, not 1000."""
        p = scheme.params
        terms = [scheme.encrypt(1) for _ in range(1000)]
        total = CGBE.sum_(p, terms)
        assert total.value_bits <= 32 + 11


class TestOverflowExactBoundary:
    """The overflow checks are ``>=``, so the edge cases are exact:
    a tracked bound one bit under ``modulus_bits`` is the last legal
    state, ``modulus_bits`` itself must raise."""

    @staticmethod
    def _fake(scheme, value_bits, power=1, value=3):
        return CGBECiphertext(value=value, power=power,
                              value_bits=value_bits)

    def test_product_at_boundary_minus_one_succeeds(self, scheme):
        p = scheme.params
        a = self._fake(scheme, p.modulus_bits - 3)
        b = self._fake(scheme, 2)
        assert CGBE.multiply(p, a, b).value_bits == p.modulus_bits - 1
        assert CGBE.product(p, [a, b]).value_bits == p.modulus_bits - 1

    def test_product_at_exact_boundary_raises(self, scheme):
        p = scheme.params
        a = self._fake(scheme, p.modulus_bits - 2)
        b = self._fake(scheme, 2, value=5)
        with pytest.raises(OverflowError_,
                           match=f"{p.modulus_bits} bits but the modulus"):
            CGBE.multiply(p, a, b)
        with pytest.raises(OverflowError_, match="split the aggregation"):
            CGBE.product(p, [a, b])

    def test_sum_at_boundary_minus_one_succeeds(self, scheme):
        p = scheme.params
        a = self._fake(scheme, p.modulus_bits - 2)
        b = self._fake(scheme, p.modulus_bits - 2, value=5)
        total = CGBE.sum_(p, [a, b])
        assert total.value_bits == p.modulus_bits - 1

    def test_sum_at_exact_boundary_raises(self, scheme):
        p = scheme.params
        a = self._fake(scheme, p.modulus_bits - 1)
        b = self._fake(scheme, p.modulus_bits - 1, value=5)
        with pytest.raises(OverflowError_, match="emit partial sums"):
            CGBE.sum_(p, [a, b])

    def test_power_at_exact_boundary(self, scheme):
        p = scheme.params
        base = self._fake(scheme, (p.modulus_bits - 1) // 3)
        assert CGBE.power(p, base, 3).value_bits < p.modulus_bits
        over = self._fake(scheme, (p.modulus_bits + 2) // 3)
        if over.value_bits * 3 >= p.modulus_bits:
            with pytest.raises(OverflowError_, match="power would need"):
                CGBE.power(p, over, 3)


class TestEncryptValidation:
    def test_non_positive_rejected(self, scheme):
        with pytest.raises(ValueError):
            scheme.encrypt(0)
        with pytest.raises(ValueError):
            scheme.encrypt(-3)

    def test_oversized_message_rejected(self, scheme):
        with pytest.raises(ValueError, match="too large"):
            scheme.encrypt(1 << 20)

    def test_ciphertext_add_operator_disabled(self, scheme):
        with pytest.raises(TypeError):
            scheme.encrypt(1) + scheme.encrypt(1)

    def test_ciphertext_bytes(self, scheme):
        assert scheme.ciphertext_bytes() == 512 // 8 + 8


class TestProperties:
    @given(st.lists(st.booleans(), min_size=1, max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_product_q_detection_matches_plaintext(self, flags):
        """Property: factor-q test == 'any violating factor present'."""
        scheme = CGBE.generate(modulus_bits=1024, q_bits=16, r_bits=16,
                               seed=9)
        p = scheme.params
        factors = [scheme.encrypt_q() if flag else scheme.encrypt(1)
                   for flag in flags]
        product = CGBE.product(p, factors)
        assert scheme.has_factor_q(product) == any(flags)

    @given(st.lists(st.lists(st.booleans(), min_size=3, max_size=3),
                    min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_sum_q_detection_matches_all_items_violating(self, rows):
        """Property: the per-ball sum keeps factor q iff every item has it
        (the exact soundness condition of Alg. 3 line 7)."""
        scheme = CGBE.generate(modulus_bits=1024, q_bits=16, r_bits=16,
                               seed=10)
        p = scheme.params
        items = []
        for row in rows:
            factors = [scheme.encrypt_q() if f else scheme.encrypt(1)
                       for f in row]
            items.append(CGBE.product(p, factors))
        total = CGBE.sum_(p, items)
        assert scheme.has_factor_q(total) == all(any(r) for r in rows)


class TestFixedBaseExp:
    def test_matches_builtin_pow(self):
        from repro.crypto.cgbe import FixedBaseExp

        modulus = generate_prime(64, seeded_rng(b"fbe", 1))
        table = FixedBaseExp(12345, modulus)
        for exponent in (0, 1, 2, 3, 15, 16, 17, 255, 256, 1 << 40,
                         (1 << 64) - 1, modulus - 2):
            assert table.pow(exponent) == pow(12345, exponent, modulus)

    @given(st.integers(min_value=0, max_value=1 << 128))
    @settings(max_examples=100, deadline=None)
    def test_pow_identity_property(self, exponent):
        from repro.crypto.cgbe import FixedBaseExp

        table = FixedBaseExp(987654321, (1 << 61) - 1)
        assert table.pow(exponent) == pow(987654321, exponent, (1 << 61) - 1)

    def test_memo_eviction_bounded(self):
        from repro.crypto.cgbe import FixedBaseExp
        from repro.framework.metrics import CacheStats

        stats = CacheStats()
        table = FixedBaseExp(3, 1_000_003, max_memo=8, stats=stats)
        for exponent in range(1, 33):
            table.pow(exponent)
        assert len(table._memo) <= 8
        assert stats.evictions == 32 - 8
        assert stats.misses == 32
        # Evicted exponents still compute correctly (off the table).
        assert table.pow(1) == 3

    def test_validation(self):
        from repro.crypto.cgbe import FixedBaseExp

        with pytest.raises(ValueError, match="modulus"):
            FixedBaseExp(2, 1)
        with pytest.raises(ValueError, match="window"):
            FixedBaseExp(2, 17, window=0)
        with pytest.raises(ValueError, match="max_memo"):
            FixedBaseExp(2, 17, max_memo=0)
        with pytest.raises(ValueError, match="exponent"):
            FixedBaseExp(2, 17).pow(-1)

    def test_shared_table_reused_across_instances(self):
        from repro.crypto.cgbe import _FIXED_BASE_TABLES, shared_fixed_base

        a = shared_fixed_base(7, 1_000_003)
        b = shared_fixed_base(7, 1_000_003)
        assert a is b
        assert len(_FIXED_BASE_TABLES) <= 16

    def test_decrypt_uses_unblind_table(self, scheme):
        """decrypt() runs through the memoized unblinding table -- values
        must match the naive ``c * (g^-x)^power`` formula and the memo
        must see traffic."""
        p = scheme.params
        before = scheme.decrypt_stats.snapshot()
        for m in (1, 2, 7):
            c = scheme.encrypt(m)
            naive = (c.value * pow(scheme._gx_inv, c.power, p.modulus)
                     ) % p.modulus
            assert scheme.decrypt(c) == naive
            assert scheme.decrypt(c) % m == 0  # blinded plaintext m * r
        delta = scheme.decrypt_stats.delta(before)
        assert delta.lookups >= 3


class TestCiphertextPowerCache:
    def test_matches_naive_power(self, scheme):
        from repro.crypto.cgbe import CiphertextPowerCache

        base = scheme.encrypt(1)
        cache = CiphertextPowerCache(scheme.params, base)
        for k in (1, 2, 3, 5, 8, 13, 15):
            expected = CGBE.power(scheme.params, base, k)
            got = cache.power(k)
            assert got.value == expected.value
            assert got.power == expected.power
            assert got.value_bits == expected.value_bits

    def test_memo_bound_and_stats(self, scheme):
        from repro.crypto.cgbe import CiphertextPowerCache
        from repro.framework.metrics import CacheStats

        stats = CacheStats()
        base = scheme.encrypt(1)
        cache = CiphertextPowerCache(scheme.params, base, max_entries=4,
                                     stats=stats)
        for k in range(1, 11):
            cache.power(k)
        assert len(cache._memo) <= 4
        assert stats.evictions > 0
        before = stats.snapshot()
        cache.power(10)
        assert stats.delta(before).hits == 1

    def test_validation(self, scheme):
        from repro.crypto.cgbe import CiphertextPowerCache

        base = scheme.encrypt(1)
        with pytest.raises(ValueError, match="max_entries"):
            CiphertextPowerCache(scheme.params, base, max_entries=0)
        with pytest.raises(ValueError, match="exponent"):
            CiphertextPowerCache(scheme.params, base).power(0)
