"""The paper's propositions, tested directly (App. A.2).

Props. 1-2 justify the entire ball decomposition: every matching subgraph
of the whole graph is recovered from candidate balls (centers of one
chosen label, radius d_Q) when only center-containing matches are kept.
Props. 3-4 justify the pruning rules.  Each is exercised on randomized
instances against brute-force ground truth.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoding import LabelCodec
from repro.core.trees import enumerate_center_tree_encodings
from repro.core.twiglets import twiglets_from
from repro.graph.ball import extract_ball
from repro.graph.generators import uniform_random_graph
from repro.graph.qgen import QGen
from repro.semantics.hom import iter_homomorphisms


def world(seed: int):
    graph = uniform_random_graph(40, 90, 5, seed=seed % 17)
    query = QGen(graph, seed=seed, max_attempts=400).generate(4, 2)
    return graph, query


class TestProps1And2:
    """Ball localization is complete for every label choice."""

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_every_global_match_found_in_candidate_balls(self, seed):
        graph, query = world(seed)
        global_images = {frozenset(m.values())
                         for m in iter_homomorphisms(query, graph)}
        for label in query.alphabet:
            recovered = set()
            for center in graph.vertices_with_label(label):
                ball = extract_ball(graph, center, query.diameter)
                for match in iter_homomorphisms(query, ball.graph,
                                                require_vertex=center):
                    recovered.add(frozenset(match.values()))
            assert recovered == global_images, (
                f"label {label!r}: localization lost or invented matches")

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_prop1_matches_lie_inside_label_balls(self, seed):
        """Prop. 1 verbatim: each match image sits inside some ball
        G[v, d_Q] with L(v) = l and v in the image."""
        graph, query = world(seed)
        label = sorted(query.alphabet, key=repr)[0]
        for match in iter_homomorphisms(query, graph):
            image = set(match.values())
            witnesses = [v for v in image if graph.label(v) == label]
            assert witnesses, "some query vertex carries the label"
            found = False
            for v in witnesses:
                ball = extract_ball(graph, v, query.diameter)
                if image <= set(ball.graph.vertices()):
                    found = True
                    break
            assert found


class TestProp3:
    """Tree mismatch at the center forbids matching the center."""

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_missing_query_tree_implies_no_center_match(self, seed):
        graph, query = world(seed)
        codec = LabelCodec.from_alphabet(query.alphabet)
        for center in sorted(graph.vertices(), key=repr)[:10]:
            ball = extract_ball(graph, center, query.diameter)
            ball_trees, _ = enumerate_center_tree_encodings(
                ball.graph, center, codec)
            for u in query.vertex_order:
                if query.label(u) != graph.label(center):
                    continue
                query_trees, _ = enumerate_center_tree_encodings(
                    query.pattern, u, codec)
                if query_trees - ball_trees:
                    # Prop. 3: u cannot map to the center.
                    for match in iter_homomorphisms(query, ball.graph):
                        assert match[u] != center


class TestProp4:
    """Twiglet mismatch at the center forbids matching the center."""

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_missing_query_twiglet_implies_no_center_match(self, seed):
        graph, query = world(seed)
        for center in sorted(graph.vertices(), key=repr)[:10]:
            ball = extract_ball(graph, center, query.diameter)
            ball_twiglets = twiglets_from(ball.graph, center, 3,
                                          query.alphabet)
            for u in query.vertex_order:
                if query.label(u) != graph.label(center):
                    continue
                query_twiglets = twiglets_from(query.pattern, u, 3,
                                               query.alphabet)
                if query_twiglets - ball_twiglets:
                    for match in iter_homomorphisms(query, ball.graph):
                        assert match[u] != center
