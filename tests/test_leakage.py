"""Tests for the SP-observable leakage audit."""

import pytest

from repro.analysis.leakage import (
    DISCLOSURE_DEPENDENT,
    LeakageProfile,
    assert_query_independent,
    diff_profiles,
)
from repro.framework.prilo import Prilo, PriloConfig
from repro.framework.prilo_star import PriloStar
from repro.graph.generators import social_graph
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query import Query


@pytest.fixture(scope="module")
def graph():
    base = social_graph(200, 3, 0.05, 4, seed=5)
    relabeled = {v: "ABCD"[base.label(v) % 4] for v in base.vertices()}
    return LabeledGraph.from_edges(relabeled, base.edges())


@pytest.fixture(scope="module")
def label_twins():
    """Structurally different, label-identical queries.

    Both must also share the *diameter* (it travels in the clear), so the
    pair is a 4-cycle and a star-plus-chord, both of diameter 2.
    """
    labels = {0: "A", 1: "B", 2: "C", 3: "D"}
    cycle = Query.from_edges(labels, [(0, 1), (1, 2), (2, 3), (0, 3)],
                             vertex_order=(0, 1, 2, 3))
    star_chord = Query.from_edges(labels,
                                  [(0, 1), (0, 2), (0, 3), (2, 3)],
                                  vertex_order=(0, 1, 2, 3))
    assert cycle.diameter == star_chord.diameter == 2
    return cycle, star_chord


@pytest.fixture(scope="module")
def config():
    return PriloConfig(k_players=2, modulus_bits=1024, q_bits=24,
                       r_bits=24, radii=(1, 2, 3), seed=6)


class TestProfiles:
    def test_profile_captures_public_fields(self, graph, label_twins,
                                            config):
        query, _ = label_twins
        result = Prilo.setup(graph, config).run(query)
        profile = LeakageProfile.of(result)
        assert profile.num_candidates == len(result.candidate_ids)
        assert profile.diameter == query.diameter
        assert len(profile.vertex_labels) == query.size

    def test_diff_empty_for_same_run(self, graph, label_twins, config):
        query, _ = label_twins
        result = Prilo.setup(graph, config).run(query)
        assert diff_profiles(LeakageProfile.of(result),
                             LeakageProfile.of(result)) == {}


class TestQueryIndependence:
    def test_baseline_prilo_fully_indistinguishable(self, graph,
                                                    label_twins, config):
        """Without pruning, every SP observable is label-determined."""
        q1, q2 = label_twins
        assert q1.diameter == q2.diameter
        engine = Prilo.setup(graph, config)
        assert_query_independent(engine.run(q1), engine.run(q2))

    def test_prilo_star_indistinguishable_up_to_disclosure(
            self, graph, label_twins, config):
        q1, q2 = label_twins
        engine = PriloStar.setup(graph, config)
        assert_query_independent(engine.run(q1), engine.run(q2),
                                 ignore=DISCLOSURE_DEPENDENT)

    def test_different_labels_are_detected(self, graph, label_twins,
                                           config):
        """Negative control: a query with different labels must produce a
        visibly different profile (labels are public by design)."""
        q1, _ = label_twins
        other = Query.from_edges({0: "A", 1: "B", 2: "C", 3: "C"},
                                 [(0, 1), (1, 2), (2, 3), (0, 3)],
                                 vertex_order=(0, 1, 2, 3))
        engine = Prilo.setup(graph, config)
        with pytest.raises(AssertionError, match="observable"):
            assert_query_independent(engine.run(q1), engine.run(other))