"""Dynamic-graph primitives: mutation, deltas, and the delta log.

Contract under test: mutations keep every index (labels, degrees, edge
count) exact and bump the mutation epoch so memoized structures fail
loudly (:class:`~repro.graph.ball.StaleIndexError`) instead of serving
stale balls; :class:`~repro.graph.delta.GraphDelta` is a strict,
serializable value type; the delta log is CRC-framed and keyed-digest
authenticated, splitting torn tails from hostile records the way the run
journal does.
"""

import pytest

from repro.graph.ball import BallIndex, StaleIndexError
from repro.graph.delta import (
    GraphDelta,
    dirty_ball_keys,
    random_delta,
    touched_min_distances,
)
from repro.graph.labeled_graph import LabeledGraph
from repro.storage import StoreError
from repro.storage.delta import (
    DeltaLog,
    StaleDeltaError,
    TamperedDeltaError,
    delta_key,
)


def _line_graph():
    """a -> b -> c -> d with two labels."""
    labels = {"a": "X", "b": "Y", "c": "X", "d": "Y"}
    edges = [("a", "b"), ("b", "c"), ("c", "d")]
    return LabeledGraph.from_edges(labels, edges)


# ---------------------------------------------------------------------------
# mutation API
# ---------------------------------------------------------------------------
class TestMutation:
    def test_remove_edge_bookkeeping(self):
        graph = _line_graph()
        graph.remove_edge("b", "c")
        assert not graph.has_edge("b", "c")
        assert graph.num_edges == 2
        assert graph.out_degree("b") == 0
        assert graph.in_degree("c") == 0

    def test_remove_missing_edge_raises(self):
        graph = _line_graph()
        with pytest.raises(KeyError):
            graph.remove_edge("a", "c")
        with pytest.raises(KeyError):
            graph.remove_edge("zz", "a")

    def test_remove_vertex_drops_incident_edges(self):
        graph = _line_graph()
        graph.remove_vertex("b")
        assert "b" not in graph
        assert graph.num_vertices == 3
        assert graph.num_edges == 1  # only c -> d survives
        assert graph.successors("a") == frozenset()
        assert graph.predecessors("c") == frozenset()

    def test_remove_vertex_updates_label_index(self):
        graph = _line_graph()
        graph.remove_vertex("a")
        assert graph.vertices_with_label("X") == frozenset({"c"})
        # Removing the last carrier of a label shrinks the alphabet.
        graph.remove_vertex("c")
        assert "X" not in graph.alphabet
        assert graph.vertices_with_label("X") == frozenset()

    def test_remove_unknown_vertex_raises(self):
        graph = _line_graph()
        with pytest.raises(KeyError):
            graph.remove_vertex("zz")

    def test_remove_then_readd_roundtrips(self):
        graph = _line_graph()
        reference = _line_graph()
        graph.remove_vertex("b")
        graph.add_vertex("b", "Y")
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        assert graph == reference


# ---------------------------------------------------------------------------
# satellite bugfix: __hash__ consistent with __eq__
# ---------------------------------------------------------------------------
class TestGraphHash:
    def test_equal_graphs_equal_hash(self):
        a, b = _line_graph(), _line_graph()
        assert a == b
        assert hash(a) == hash(b)

    def test_insertion_order_irrelevant(self):
        labels = {"a": "X", "b": "Y"}
        forward = LabeledGraph.from_edges(labels, [("a", "b")])
        backward = LabeledGraph()
        backward.add_vertex("b", "Y")
        backward.add_vertex("a", "X")
        backward.add_edge("a", "b")
        assert forward == backward
        assert hash(forward) == hash(backward)

    def test_usable_in_sets(self):
        distinct = _line_graph()
        distinct.remove_edge("a", "b")
        pool = {_line_graph(), _line_graph(), distinct}
        assert len(pool) == 2
        assert _line_graph() in pool

    def test_mutation_changes_hash(self):
        graph = _line_graph()
        before = hash(graph)
        graph.remove_edge("a", "b")
        assert hash(graph) != before


# ---------------------------------------------------------------------------
# satellite bugfix: mutation epoch strands stale ball indexes
# ---------------------------------------------------------------------------
class TestEpoch:
    def test_effective_mutations_bump(self):
        graph = _line_graph()
        epoch = graph.mutation_epoch
        graph.add_vertex("e", "X")
        graph.add_edge("d", "e")
        graph.remove_edge("d", "e")
        graph.remove_vertex("e")
        assert graph.mutation_epoch == epoch + 4

    def test_noop_mutations_do_not_bump(self):
        graph = _line_graph()
        epoch = graph.mutation_epoch
        graph.add_vertex("a", "X")  # already present, same label
        graph.add_edge("a", "b")    # already present
        assert graph.mutation_epoch == epoch

    def test_stale_index_raises(self):
        graph = _line_graph()
        index = BallIndex(graph, (1,))
        assert index.ball("a", 1) is not None
        graph.remove_edge("a", "b")
        with pytest.raises(StaleIndexError):
            index.ball("a", 1)
        with pytest.raises(StaleIndexError):
            index.ball_id("a", 1)
        with pytest.raises(StaleIndexError):
            list(index.candidate_balls("X", 1))

    def test_fresh_index_after_mutation(self):
        graph = _line_graph()
        graph.remove_edge("a", "b")
        index = BallIndex(graph, (1,))
        ball = index.ball("a", 1)
        assert set(ball.graph.vertices()) == {"a"}

    def test_explicit_id_assignment(self):
        graph = _line_graph()
        base = BallIndex(graph, (1,)).id_map()
        shifted = {key: ball_id + 100 for key, ball_id in base.items()}
        index = BallIndex(graph, (1,), ids=shifted)
        assert index.ball_id("a", 1) == base[("a", 1)] + 100
        assert index.ball("a", 1).ball_id == base[("a", 1)] + 100

    def test_bad_id_assignment_rejected(self):
        graph = _line_graph()
        base = BallIndex(graph, (1,)).id_map()
        with pytest.raises(ValueError):
            BallIndex(graph, (1,), ids=dict(list(base.items())[:-1]))
        clash = dict(base)
        clash[("a", 1)] = clash[("b", 1)]
        with pytest.raises(ValueError):
            BallIndex(graph, (1,), ids=clash)


# ---------------------------------------------------------------------------
# GraphDelta value type
# ---------------------------------------------------------------------------
class TestGraphDelta:
    def test_apply_and_roundtrip(self):
        graph = _line_graph()
        delta = GraphDelta(added_vertices=(("e", "Z"),),
                           removed_vertices=("d",),
                           added_edges=(("c", "e"),),
                           removed_edges=(("a", "b"),))
        delta.apply(graph)
        assert "e" in graph and "d" not in graph
        assert graph.has_edge("c", "e") and not graph.has_edge("a", "b")
        clone = GraphDelta.from_bytes(delta.to_bytes())
        assert clone == delta
        assert clone.size == delta.size == 4

    def test_double_apply_raises(self):
        graph = _line_graph()
        delta = GraphDelta(removed_edges=(("a", "b"),))
        delta.apply(graph)
        with pytest.raises(KeyError):
            delta.apply(graph)

    def test_foreign_delta_raises(self):
        graph = _line_graph()
        delta = GraphDelta(removed_edges=(("a", "d"),))
        with pytest.raises(KeyError):
            delta.apply(graph)

    def test_readding_existing_vertex_raises(self):
        graph = _line_graph()
        delta = GraphDelta(added_vertices=(("a", "X"),))
        with pytest.raises(ValueError):
            delta.apply(graph)

    def test_touched_and_dirty(self):
        graph = _line_graph()
        delta = GraphDelta(removed_edges=(("b", "c"),))
        touched = delta.touched_vertices()
        assert touched == {"b", "c"}
        dists = touched_min_distances(graph, touched, 2)
        delta.apply(graph)
        dists = touched_min_distances(graph, touched, 2, into=dists)
        dirty = dirty_ball_keys(dists, (1, 2))
        # Radius-1 balls of a..d all reach b or c on the pre-delta graph.
        assert ("a", 1) in dirty and ("d", 1) in dirty
        assert ("a", 2) in dirty and ("d", 2) in dirty

    def test_random_delta_deterministic(self):
        graph = _line_graph()
        first = random_delta(graph, edge_fraction=0.5, seed=11)
        second = random_delta(_line_graph(), edge_fraction=0.5, seed=11)
        assert first == second
        assert not first.is_empty
        first.apply(graph)  # applies cleanly to the graph it was cut from


# ---------------------------------------------------------------------------
# the authenticated delta log
# ---------------------------------------------------------------------------
class TestDeltaLog:
    KEY = delta_key(3)

    def _populated(self, path):
        log = DeltaLog(path, self.KEY)
        graph = _line_graph()
        for seed in (1, 2):
            parent = f"digest-{seed}"
            delta = random_delta(graph, edge_fraction=0.5, seed=seed)
            delta.apply(graph)
            log.append(delta, parent=parent, result=f"digest-{seed + 1}")
        log.close()
        return log

    def test_append_replay_roundtrip(self, tmp_path):
        log = self._populated(tmp_path / "updates.log")
        state = log.replay()
        assert [rec.seq for rec in state.records] == [0, 1]
        assert state.tampered_records == 0
        assert state.truncated_bytes == 0
        assert state.records[0].parent == "digest-1"
        assert all(isinstance(rec.delta, GraphDelta)
                   for rec in state.records)

    def test_append_continues_sequence(self, tmp_path):
        path = tmp_path / "updates.log"
        self._populated(path)
        log = DeltaLog(path, self.KEY)
        record = log.append(GraphDelta(removed_edges=(("a", "b"),)),
                            parent="p", result="r")
        log.close()
        assert record.seq == 2
        assert len(log.replay().records) == 3

    def test_torn_tail_truncated_not_tampered(self, tmp_path):
        path = tmp_path / "updates.log"
        self._populated(path)
        intact = path.stat().st_size
        with path.open("ab") as fh:
            fh.write(b"\xa5\x07garbage-torn-write")
        log = DeltaLog(path, self.KEY)
        state = log.replay()
        assert len(state.records) == 2
        assert state.tampered_records == 0
        assert state.truncated_bytes > 0
        assert path.stat().st_size == intact  # tail cut back

    def test_bitflip_is_tamper_not_torn(self, tmp_path):
        path = tmp_path / "updates.log"
        self._populated(path)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x01
        path.write_bytes(bytes(data))
        state = DeltaLog(path, self.KEY).replay(truncate=False)
        # A mid-file flip breaks a CRC frame: everything from there on is
        # unreadable (torn), never silently reinterpreted.
        assert len(state.records) < 2
        assert state.truncated_bytes > 0 or state.tampered_records > 0

    def test_wrong_key_is_tampered(self, tmp_path):
        path = tmp_path / "updates.log"
        self._populated(path)
        state = DeltaLog(path, delta_key(999)).replay(truncate=False)
        assert len(state.records) == 0
        assert state.tampered_records == 2

    def test_reframed_meta_fails_digest(self, tmp_path):
        """Re-framing a record with edited meta (valid CRC!) must still be
        tampered: the keyed digest covers seq/parent/result."""
        import json
        import struct
        import zlib

        path = tmp_path / "updates.log"
        self._populated(path)
        log = DeltaLog(path, self.KEY)
        data = path.read_bytes()
        header = struct.Struct("<BBI")
        magic, rtype, length = header.unpack_from(data, 0)
        payload = data[header.size:header.size + length]
        meta_len = struct.unpack_from("<I", payload, 0)[0]
        meta = json.loads(payload[4:4 + meta_len])
        meta["result"] = "0" * 64  # forge the chain target
        meta_bytes = json.dumps(meta, sort_keys=True,
                                separators=(",", ":")).encode()
        blob = payload[4 + meta_len:]
        forged_payload = struct.pack("<I", len(meta_bytes)) + meta_bytes + blob
        forged_header = header.pack(magic, rtype, len(forged_payload))
        crc = zlib.crc32(forged_header + forged_payload) & 0xFFFFFFFF
        path.write_bytes(forged_header + forged_payload
                         + struct.pack("<I", crc))
        state = log.replay(truncate=False)
        assert state.tampered_records == 1
        assert len(state.records) == 0

    def test_error_taxonomy(self):
        assert issubclass(StaleDeltaError, Exception)
        assert issubclass(TamperedDeltaError, Exception)
        assert not issubclass(StaleDeltaError, TamperedDeltaError)


# ---------------------------------------------------------------------------
# satellite bugfix: shard error frames are redacted
# ---------------------------------------------------------------------------
class TestShardRedaction:
    def test_paths_and_frames_scrubbed(self):
        from repro.framework.shard import redact_error

        try:
            raise StoreError("pack /var/lib/prilo/store/balls.pack is "
                             "tampered near offset 123")
        except StoreError as exc:
            detail = redact_error(exc)
        assert detail.startswith("StoreError: ")
        assert "/var/lib" not in detail
        assert "<path>" in detail
        assert "\n" not in detail
        assert "Traceback" not in detail

    def test_long_messages_truncated(self):
        from repro.framework.shard import redact_error

        detail = redact_error(ValueError("x" * 1000))
        assert len(detail) < 200
        assert detail.endswith("...")

    def test_empty_message(self):
        from repro.framework.shard import redact_error

        assert redact_error(RuntimeError()) == "RuntimeError"
