"""End-to-end integration tests for Prilo and Prilo* (Alg. 3, Sec. 4).

The master correctness property, checked per semantics: the set of balls
from which the engine reports matches equals the ground-truth set computed
by the plaintext matchers -- the whole privacy machinery must change
*nothing* about the answers.
"""

import pytest

from repro.framework.prilo import Prilo, PriloConfig
from repro.framework.prilo_star import PriloStar
from repro.graph.generators import fig3_graph, fig3_query
from repro.graph.query import Semantics
from repro.workloads.experiments import ground_truth_positive_ids


@pytest.fixture(scope="module")
def config():
    return PriloConfig(k_players=2, modulus_bits=1024, q_bits=16,
                       r_bits=16, radii=(1, 2, 3), seed=3,
                       bf=__import__("repro.core.bf_pruning",
                                     fromlist=["BFConfig"]).BFConfig(
                           eta=16, expected_trees=200))


class TestFig3EndToEnd:
    def test_prilo_finds_the_match(self, config):
        engine = Prilo.setup(fig3_graph(), config)
        result = engine.run(fig3_query())
        assert result.num_matches == 1
        (found,) = [m for ms in result.matches.values() for m in ms]
        assert set(found.vertices()) == {"v2", "v3", "v5", "v6"}
        assert result.sequence_mode == "rsg"
        assert result.pm_per_method == {}

    def test_prilo_star_same_answers_with_pruning(self, config):
        star = PriloStar.setup(fig3_graph(), config)
        result = star.run(fig3_query())
        assert result.num_matches == 1
        assert result.pm_per_method.keys() == {"bf", "twiglet"}
        assert len(result.pm_positive_ids) < len(result.candidate_ids)

    def test_chosen_label_maximizes_candidates(self, config):
        engine = Prilo.setup(fig3_graph(), config)
        result = engine.run(fig3_query())
        assert result.chosen_label == "C"  # 3 C-vertices in G
        assert len(result.candidate_ids) == 3

    def test_min_label_strategy(self, config):
        from dataclasses import replace

        engine = Prilo.setup(fig3_graph(),
                             replace(config, label_strategy="min"))
        result = engine.run(fig3_query())
        assert len(result.candidate_ids) == 1
        assert result.num_matches == 1  # Props. 1-2: any label works


class TestAgreementAcrossSemantics:
    @pytest.mark.parametrize("semantics", [Semantics.HOM,
                                           Semantics.SUB_ISO,
                                           Semantics.SSIM])
    def test_match_balls_equal_ground_truth(self, dataset, config,
                                            semantics):
        graph = dataset.graph_for(semantics)
        query = dataset.random_queries(1, size=4, diameter=2,
                                       semantics=semantics, seed=5)[0]
        star = PriloStar.setup(graph, config)
        result = star.run(query)
        _, candidates = star.candidate_balls(query)
        truth = ground_truth_positive_ids(query, candidates)
        # Soundness: pruning and verification never lose a true positive.
        assert truth <= result.pm_positive_ids
        assert truth <= result.verified_ids | (
            result.verified_ids ^ result.verified_ids)  # no-op guard
        # Exactness of the final answer set.
        assert result.match_ball_ids == truth

    def test_prilo_and_prilo_star_agree(self, dataset, config):
        query = dataset.random_queries(1, size=4, diameter=2, seed=6)[0]
        plain = Prilo.setup(dataset.graph, config).run(query)
        star = PriloStar.setup(dataset.graph, config).run(query)
        assert plain.match_ball_ids == star.match_ball_ids
        assert plain.num_matches == star.num_matches


class TestConfig:
    def test_setup_overrides(self, config):
        engine = PriloStar.setup(fig3_graph(), config, use_bf=False)
        assert engine.config.use_twiglet
        assert not engine.config.use_bf

    def test_paper_crypto_parameters(self):
        cfg = PriloConfig().paper_crypto()
        assert cfg.modulus_bits == 4096
        assert cfg.q_bits == cfg.r_bits == 32

    def test_diameter_not_indexed_raises(self, config):
        engine = Prilo.setup(fig3_graph(), config)
        query = fig3_query()
        object.__setattr__(query, "diameter", 9)
        with pytest.raises(ValueError, match="radii"):
            engine.run(query)

    def test_unknown_label_strategy(self, config):
        from dataclasses import replace

        engine = Prilo.setup(fig3_graph(),
                             replace(config, label_strategy="median"))
        with pytest.raises(ValueError, match="strategy"):
            engine.run(fig3_query())


class TestResultMetrics:
    def test_timings_and_schedule_populated(self, dataset, config):
        query = dataset.random_queries(1, size=4, diameter=2, seed=8)[0]
        star = PriloStar.setup(dataset.graph, config)
        result = star.run(query)
        metrics = result.metrics
        assert metrics.candidate_balls == len(result.candidate_ids)
        assert metrics.timings.user_preprocessing > 0
        assert metrics.timings.pm_computation > 0
        assert len(metrics.per_ball_eval_cost) == len(result.candidate_ids)
        assert result.schedule.makespan >= result.schedule.all_positives
        assert metrics.sizes.user_to_sp() > 0

    def test_ssg_schedule_beats_rsg_for_low_ppcr(self, dataset, config):
        """On the same measured costs, SSG's time-to-all-positives is never
        worse than RSG's makespan."""
        query = dataset.random_queries(1, size=4, diameter=2, seed=9)[0]
        star = PriloStar.setup(dataset.graph, config)
        result = star.run(query)
        if result.sequence_mode == "early" and result.pm_positive_ids:
            assert result.schedule.all_positives <= result.schedule.makespan


class TestStreaming:
    def test_stream_matches_ordered_by_completion(self, dataset, config):
        query = dataset.random_queries(1, size=4, diameter=2, seed=5)[0]
        star = PriloStar.setup(dataset.graph, config)
        result = star.run(query)
        streamed = list(result.stream_matches())
        assert len(streamed) == len(result.matches)
        times = [when for when, _, _ in streamed]
        assert times == sorted(times)
        for when, ball_id, matches in streamed:
            assert matches == result.matches[ball_id]
            assert when <= result.schedule.makespan + 1e-9

    def test_time_to_first_match(self, dataset, config):
        query = dataset.random_queries(1, size=4, diameter=2, seed=5)[0]
        result = PriloStar.setup(dataset.graph, config).run(query)
        first = result.time_to_first_match()
        if result.matches:
            assert first is not None
            assert first <= result.schedule.all_positives + 1e-9
        else:
            assert first is None


class TestConfigValidation:
    def test_bad_k(self):
        with pytest.raises(ValueError, match="k_players"):
            PriloConfig(k_players=0)

    def test_ssg_needs_two_players(self):
        with pytest.raises(ValueError, match="two players"):
            PriloConfig(k_players=1, use_ssg=True)

    def test_twiglet_h_range(self):
        with pytest.raises(ValueError, match="twiglet_h"):
            PriloConfig(twiglet_h=2)
        with pytest.raises(ValueError, match="twiglet_h"):
            PriloConfig(twiglet_h=6)

    def test_bounds_positive(self):
        with pytest.raises(ValueError, match="bounds"):
            PriloConfig(enumeration_limit=0)

    def test_radii_required(self):
        with pytest.raises(ValueError, match="radius"):
            PriloConfig(radii=())


class TestBaselinePruningFlags:
    def test_path_baseline_through_engine(self, dataset, config):
        from dataclasses import replace

        query = dataset.random_queries(1, size=4, diameter=2, seed=11)[0]
        engine = Prilo.setup(
            dataset.graph,
            replace(config, use_path=True, use_ssg=True))
        result = engine.run(query)
        assert set(result.pm_per_method) <= {"path"}
        _, candidates = engine.candidate_balls(query)
        truth = ground_truth_positive_ids(query, candidates)
        assert truth <= result.pm_positive_ids
        assert result.match_ball_ids == truth

    def test_neighbor_baseline_through_engine(self, dataset, config):
        from dataclasses import replace

        query = dataset.random_queries(1, size=4, diameter=2, seed=12)[0]
        engine = Prilo.setup(
            dataset.graph, replace(config, use_neighbor=True))
        result = engine.run(query)
        assert set(result.pm_per_method) <= {"neighbor"}
        _, candidates = engine.candidate_balls(query)
        truth = ground_truth_positive_ids(query, candidates)
        assert truth <= result.pm_positive_ids


class TestCustomKeyring:
    def test_injected_keyring_used(self, config):
        from repro.crypto.keys import UserKeyring

        ring = UserKeyring.generate(modulus_bits=1024, seed=77)
        engine = Prilo(fig3_graph(), config, keyring=ring)
        assert engine.user.keyring is ring
        result = engine.run(fig3_query())
        assert result.num_matches == 1


class TestArchiveBackedDealer:
    def test_engine_with_durable_dealer(self, config, tmp_path):
        """Swap the in-memory encrypted store for the on-disk archive."""
        from repro.framework.roles import Dealer

        engine = Prilo.setup(fig3_graph(), config)
        archive = engine.owner.export_archive(tmp_path / "balls")
        engine.dealer = Dealer(archive)
        result = engine.run(fig3_query())
        assert result.num_matches == 1
