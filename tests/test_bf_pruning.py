"""Tests for the BF pruning pipeline (Sec. 4.1.2)."""

import pytest

from repro.core.bf_pruning import (
    BFConfig,
    player_bf_prune,
    user_decode_outcome,
    user_prepare_encodings,
)
from repro.core.encoding import LabelCodec
from repro.crypto.stream_cipher import StreamCipher
from repro.graph.ball import extract_ball
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query import Query
from repro.tee.channel import SecureChannel
from repro.tee.enclave import Enclave


@pytest.fixture()
def session():
    enclave = Enclave()
    channel = SecureChannel.establish(enclave,
                                      StreamCipher.generate_key(seed=3))
    return enclave, channel


@pytest.fixture(scope="module")
def config():
    return BFConfig(eta=16, expected_trees=200, false_positive_rate=0.05,
                    threshold_t=15)


class TestUserSide:
    def test_eta_entries_per_vertex(self, fig3, session, config):
        query, _ = fig3
        _, channel = session
        codec = LabelCodec.from_alphabet(query.alphabet)
        message = user_prepare_encodings(query, codec, channel, config)
        assert message.entries == query.size
        assert message.truncated_vertices == 0
        assert len(message.sealed_blob) > 0

    def test_truncation_counted(self, session):
        """A dense query vertex with more trees than a tiny eta."""
        _, channel = session
        labels = {0: "R", 1: "a", 2: "b", 3: "c", 4: "d", 5: "e", 6: "f"}
        edges = [(0, 1), (0, 2), (0, 3), (1, 4), (1, 5), (2, 6)]
        q = Query.from_edges(labels, edges)
        codec = LabelCodec.from_alphabet(q.alphabet)
        message = user_prepare_encodings(
            q, codec, channel, BFConfig(eta=2, expected_trees=50))
        assert message.truncated_vertices >= 1


class TestPlayerSide:
    def test_fig3_positive_ball(self, fig3, session, config):
        """G[v6,3] hosts the query's u1-tree, so BF keeps it."""
        query, graph = fig3
        enclave, channel = session
        codec = LabelCodec.from_alphabet(query.alphabet)
        enclave.load_query_encodings(
            user_prepare_encodings(query, codec, channel,
                                   config).sealed_blob)
        ball = extract_ball(graph, "v6", 3, ball_id=0)
        outcome = player_bf_prune(enclave, ball, codec, config)
        assert not outcome.bypassed
        assert user_decode_outcome(channel, outcome)

    def test_tree_poor_ball_pruned(self, session, config):
        """A ball center missing the query's trees gets pruned when the
        query vertex with its label has trees."""
        enclave, channel = session
        # Query: B-rooted vii tree exists (B-A with A-C, B-D as right).
        q = Query.from_edges({0: "B", 1: "A", 2: "C", 3: "D"},
                             [(0, 1), (1, 2), (0, 3)])
        codec = LabelCodec.from_alphabet(q.alphabet)
        enclave.load_query_encodings(
            user_prepare_encodings(q, codec, channel, config).sealed_blob)
        # Ball: a bare B-A edge; no height-2 structure at the center.
        g = LabeledGraph.from_edges({10: "B", 11: "A"}, [(10, 11)])
        ball = extract_ball(g, 10, 3, ball_id=1)
        outcome = player_bf_prune(enclave, ball, codec, config)
        assert not user_decode_outcome(channel, outcome)

    def test_soundness_on_fig3(self, fig3, session, config):
        """BF never prunes a ball containing a match."""
        from repro.semantics.evaluate import ball_contains_match

        query, graph = fig3
        enclave, channel = session
        codec = LabelCodec.from_alphabet(query.alphabet)
        enclave.load_query_encodings(
            user_prepare_encodings(query, codec, channel,
                                   config).sealed_blob)
        for center in graph.vertices():
            ball = extract_ball(graph, center, query.diameter, ball_id=0)
            outcome = player_bf_prune(enclave, ball, codec, config)
            if ball_contains_match(query, ball):
                assert user_decode_outcome(channel, outcome)

    def test_threshold_bypass(self, fig3, session):
        """threshold_t = -1 makes every non-trivial center bypass."""
        query, graph = fig3
        enclave, channel = session
        codec = LabelCodec.from_alphabet(query.alphabet)
        cfg = BFConfig(eta=8, expected_trees=50, threshold_t=-1)
        ball = extract_ball(graph, "v6", 3, ball_id=0)
        outcome = player_bf_prune(enclave, ball, codec, cfg)
        assert outcome.bypassed
        assert user_decode_outcome(channel, outcome)

    def test_filter_size_matches_eq1(self, fig3, session, config):
        query, graph = fig3
        enclave, channel = session
        codec = LabelCodec.from_alphabet(query.alphabet)
        enclave.load_query_encodings(
            user_prepare_encodings(query, codec, channel,
                                   config).sealed_blob)
        ball = extract_ball(graph, "v6", 3, ball_id=0)
        outcome = player_bf_prune(enclave, ball, codec, config)
        assert outcome.filter_bytes >= config.filter_bits() // 8


class TestBFConfig:
    def test_paper_defaults(self):
        cfg = BFConfig()
        assert cfg.eta == 256
        assert cfg.expected_trees == 10_000
        assert cfg.false_positive_rate == 0.3
        assert cfg.threshold_t == 15
        # Eq. 1: ~25K bits, i.e. < 4KB.
        assert 24_000 <= cfg.filter_bits() <= 26_000
