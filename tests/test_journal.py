"""Crash-safe durable serving: the write-ahead run journal, checkpoint/
resume, per-query deadlines and admission control (DESIGN.md section 9).

The headline property, asserted across all three semantics, pruning
on/off and both executor backends: ``kill -9`` at a chaos-chosen durable
checkpoint, followed by a resume of the *same* submission list, yields
byte-identical answer sets to the uninterrupted run -- and both agree
with the plaintext oracle.
"""

import os
import pickle
import signal
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest

from repro.core.bf_pruning import BFConfig
from repro.framework.executor import eval_share_key, verify_share_key
from repro.framework.faults import (
    INJECTABLE_KINDS,
    VALID_KINDS,
    ChaosPolicy,
    FaultKind,
)
from repro.framework.prilo import (
    BallBudgetExceeded,
    Deadline,
    DeadlineExceeded,
    Prilo,
    PriloConfig,
)
from repro.framework.prilo_star import PriloStar
from repro.framework.server import (
    QueryBatchEngine,
    QueryStatus,
)
from repro.graph.query import Semantics
from repro.tee.attestation import measure
from repro.storage.journal import (
    JournalError,
    RecordType,
    RunJournal,
    answer_digest,
    config_fingerprint,
    journal_key,
    keyed_digest,
    query_idempotency_key,
)
from repro.workloads.experiments import ground_truth_positive_ids

KEY = journal_key(3)


def _queries(dataset, semantics, count=2, distinct=2):
    base = dataset.random_queries(distinct, size=4, diameter=2,
                                  semantics=semantics, seed=13)
    return [base[i % distinct] for i in range(count)]


def _answer_key(result):
    """The byte-identity of one answer: everything the user receives."""
    return (result.candidate_ids,
            tuple(sorted(result.pm_positive_ids)),
            tuple(sorted(result.verified_ids)),
            tuple(sorted(result.match_ball_ids)),
            result.num_matches,
            tuple(sorted(result.matches)))


def _engine(dataset, config, semantics, pruning):
    graph = dataset.graph_for(semantics)
    if pruning:
        config = replace(config, use_twiglet=True, use_bf=True,
                         bf=BFConfig(eta=16, expected_trees=200))
        return PriloStar.setup(graph, config)
    return Prilo.setup(graph, config)


def _truncate_after(path, keep_records):
    """Simulate a crash: keep the first ``keep_records`` journal records
    and leave a torn partial frame behind (what ``kill -9`` mid-write
    leaves on disk)."""
    data = Path(path).read_bytes()
    offset = 0
    for _ in range(keep_records):
        frame = RunJournal._read_frame(data, offset)
        if frame is None:
            break
        offset = frame[2]
    Path(path).write_bytes(data[:offset] + b"\xa5\x03\x10")


# ---------------------------------------------------------------------------
# Record framing, torn writes, tamper evidence
# ---------------------------------------------------------------------------
class TestFraming:
    def test_append_replay_round_trip(self, tmp_path):
        journal = RunJournal(tmp_path / "j", KEY)
        journal.append(RecordType.BATCH_ADMIT, {"fingerprint": "f" * 64})
        journal.append(RecordType.QUERY_BEGIN, {"query": "q0", "index": 0})
        journal.append_share("q0", "eval:0:p0", {"verdict": 1},
                             [{"kind": "worker_crash", "key": "eval:0:p0",
                               "action": "injected"}])
        journal.append(RecordType.QUERY_COMMIT,
                       {"query": "q0", "answer_digest": "d" * 64})
        journal.close()

        state = RunJournal(tmp_path / "j", KEY).replay()
        assert state.records == 4
        assert state.fingerprint == "f" * 64
        assert state.truncated_bytes == 0
        assert state.tampered_records == 0
        query = state.queries["q0"]
        assert query.committed and query.answer_digest == "d" * 64
        share = query.shares["eval:0:p0"]
        assert share.outcome == {"verdict": 1}
        assert share.events[0]["kind"] == "worker_crash"

    def test_torn_tail_truncated_and_appendable(self, tmp_path):
        path = tmp_path / "j"
        journal = RunJournal(path, KEY)
        for i in range(5):
            journal.append(RecordType.QUERY_BEGIN, {"query": f"q{i}",
                                                    "index": i})
        journal.close()
        _truncate_after(path, 3)
        dirty = path.stat().st_size

        journal = RunJournal(path, KEY)
        state = journal.replay()
        assert state.records == 3
        assert state.truncated_bytes == 3
        # Replay self-healed the file; appending continues cleanly.
        assert path.stat().st_size == dirty - 3
        journal.append(RecordType.DRAIN, {})
        journal.close()
        state = RunJournal(path, KEY).replay()
        assert state.records == 4 and state.drained

    def test_mid_file_corruption_reads_as_lost_tail(self, tmp_path):
        path = tmp_path / "j"
        journal = RunJournal(path, KEY)
        for i in range(4):
            journal.append(RecordType.QUERY_BEGIN, {"query": f"q{i}",
                                                    "index": i})
        journal.close()
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF  # CRC break inside record 2-ish
        path.write_bytes(bytes(data))
        state = RunJournal(path, KEY).replay(truncate=False)
        assert 0 < state.records < 4
        assert state.truncated_bytes > 0

    def test_wrong_key_share_is_tampered_not_torn(self, tmp_path):
        """A record CRC-valid but keyed under a different key is hostile:
        dropped, counted, and the share left for re-evaluation."""
        path = tmp_path / "j"
        foreign = RunJournal(path, journal_key(999))
        foreign.append_share("q0", "eval:0:p0", {"verdict": 1})
        foreign.close()
        state = RunJournal(path, KEY).replay()
        assert state.tampered_records == 1
        assert state.truncated_bytes == 0
        assert "q0" not in state.queries or not state.queries["q0"].shares

    def test_giant_length_field_reads_as_torn(self, tmp_path):
        path = tmp_path / "j"
        path.write_bytes(b"\xa5\x01\xff\xff\xff\x7f" + b"x" * 64)
        state = RunJournal(path, KEY).replay(truncate=False)
        assert state.records == 0
        assert state.truncated_bytes > 0

    def test_unknown_record_type_rejected(self, tmp_path):
        journal = RunJournal(tmp_path / "j", KEY)
        with pytest.raises(JournalError):
            journal.append(99, {})

    def test_empty_key_rejected(self, tmp_path):
        with pytest.raises(JournalError):
            RunJournal(tmp_path / "j", b"")

    def test_inspect_non_destructive(self, tmp_path):
        path = tmp_path / "j"
        journal = RunJournal(path, KEY)
        journal.append(RecordType.BATCH_ADMIT, {"fingerprint": "f" * 64})
        journal.append_share("q0", "eval:0:p0", {"v": 1})
        journal.close()
        torn = path.read_bytes() + b"\xa5"
        path.write_bytes(torn)
        summary = RunJournal(path, KEY).inspect()
        assert summary["records"] == 2
        assert summary["truncated_bytes"] == 1
        assert summary["last_checkpoint"].startswith("share_result:")
        assert path.read_bytes() == torn  # inspect never truncates


class TestKeysAndFingerprints:
    def test_fingerprint_ignores_scheduling_knobs(self, test_config):
        serial = replace(test_config, executor="serial", parallelism=1)
        process = replace(test_config, executor="process", parallelism=4,
                          chaos=ChaosPolicy(seed=1, fault_rate=0.5),
                          deadline_ms=50.0)
        assert (config_fingerprint(serial, "g")
                == config_fingerprint(process, "g"))

    def test_fingerprint_tracks_answer_shaping_fields(self, test_config):
        assert (config_fingerprint(test_config, "g")
                != config_fingerprint(replace(test_config, seed=4), "g"))
        assert (config_fingerprint(test_config, "g")
                != config_fingerprint(test_config, "other-graph"))
        assert (config_fingerprint(test_config, "g")
                != config_fingerprint(
                    replace(test_config, radii=(1, 2)), "g"))

    def test_idempotency_keys(self, dataset):
        q1, q2 = _queries(dataset, Semantics.HOM, count=2, distinct=2)
        assert (query_idempotency_key(KEY, q1, 0)
                == query_idempotency_key(KEY, q1, 0))
        # Same query at another batch position consumes different
        # randomness -- distinct key.
        assert (query_idempotency_key(KEY, q1, 0)
                != query_idempotency_key(KEY, q1, 1))
        assert (query_idempotency_key(KEY, q1, 0)
                != query_idempotency_key(KEY, q2, 0))
        # Key owner matters: a foreign key cannot predict ours.
        assert (query_idempotency_key(KEY, q1, 0)
                != query_idempotency_key(journal_key(999), q1, 0))

    def test_share_keys_are_protocol_coordinates(self):
        assert eval_share_key(2, 1) == "eval:2:p1"
        assert verify_share_key(0, 3) == "verify:0:p3"

    def test_answer_digest_keyed(self):
        a = answer_digest(KEY, [1, 2], [2], 3)
        assert a == answer_digest(KEY, [2, 1], [2], 3)
        assert a != answer_digest(KEY, [1, 2], [2], 4)
        assert a != answer_digest(journal_key(999), [1, 2], [2], 3)
        assert keyed_digest(KEY, b"x") != keyed_digest(journal_key(999),
                                                       b"x")


# ---------------------------------------------------------------------------
# The acceptance matrix: kill -9 -> resume, byte-identical answers
# ---------------------------------------------------------------------------
def _serve_batch(dataset, config, semantics, pruning, queries, journal_path,
                 out_path, kill_seed=None):
    """Serve ``queries``; on success pickle the answer keys, counters and
    per-query eval-coordinate fault events to ``out_path``.  The crash
    matrix runs this in a fresh interpreter (see :func:`_crash_pass`)."""
    if kill_seed is not None:
        config = replace(config, chaos=ChaosPolicy(
            seed=kill_seed, fault_rate=0.5,
            kinds=(FaultKind.KILL_PROCESS,)))
    engine = _engine(dataset, config, semantics, pruning)
    journal = (RunJournal(journal_path, journal_key(config.seed))
               if journal_path else None)
    try:
        with QueryBatchEngine(engine, journal=journal) as server:
            report = server.serve(queries)
    finally:
        if journal is not None:
            journal.close()
    payload = ([_answer_key(r) for r in report.results],
               report.journal.as_dict(),
               [[e.as_dict() for e in r.metrics.faults.events
                 if e.key.startswith(("eval:", "verify:"))]
                for r in report.results])
    with open(out_path, "wb") as fh:
        pickle.dump(payload, fh)


#: Crash-pass child program: a *fresh* interpreter (no inherited pytest
#: state, no forked locks) that rebuilds the conftest dataset
#: (``tiny_dataset(seed=2)``), unpickles the remaining ``_serve_batch``
#: arguments, and serves the batch under the armed kill schedule.
_CRASH_CHILD = """
import pickle, sys
with open(sys.argv[1], "rb") as fh:
    args = pickle.load(fh)
from repro.workloads.datasets import tiny_dataset
import test_journal
test_journal._serve_batch(tiny_dataset(seed=2), *args)
"""


def _crash_pass(args_path, log_path):
    """Run one crash/resume pass in a subprocess; return its exit code
    (``-signal.SIGKILL`` when the chaos schedule fired).  Output goes to
    ``log_path`` -- never to a pipe a SIGKILL'd child's orphans could
    hold open."""
    here = Path(__file__).resolve().parent
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(here.parent / "src"), str(here),
         env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
    with open(log_path, "ab") as log:
        return subprocess.run(
            [sys.executable, "-c", _CRASH_CHILD, str(args_path)],
            env=env, stdout=log, stderr=log, timeout=600).returncode


class TestKillResumeMatrix:
    """``kill -9`` at a chaos-chosen checkpoint, resume, byte-identical
    answers -- the PR's acceptance matrix."""

    @pytest.mark.parametrize("pruning", [False, True],
                             ids=["no-pruning", "pruning"])
    @pytest.mark.parametrize("backend", ["serial", "process"])
    @pytest.mark.parametrize("semantics", [Semantics.HOM,
                                           Semantics.SUB_ISO,
                                           Semantics.SSIM])
    def test_kill_then_resume_matches_uninterrupted(
            self, dataset, test_config, tmp_path, semantics, backend,
            pruning):
        config = replace(test_config, executor=backend,
                         parallelism=2 if backend == "process" else 1)
        queries = _queries(dataset, semantics)

        # Uninterrupted baseline (same process, no journal, no chaos).
        _serve_batch(dataset, config, semantics, pruning, queries, None,
                     tmp_path / "baseline.pkl")
        with open(tmp_path / "baseline.pkl", "rb") as fh:
            baseline, _, _ = pickle.load(fh)

        # Crash loop: the kill schedule stays armed on every resume; each
        # pass checkpoints at least one share before dying (the SIGKILL
        # fires only after a fresh durable append), so it converges.  The
        # kill coin is a pure hash of (seed, coordinate); a seed whose
        # schedule never fires for this cell's coordinates proves nothing,
        # so try a few seeds (fresh journal each) until one kills.
        kills = 0
        for kill_seed in (7, 11, 5, 29):
            journal_path = tmp_path / f"run-{kill_seed}.journal"
            out_path = tmp_path / f"answers-{kill_seed}.pkl"
            args_path = tmp_path / f"child-args-{kill_seed}.pkl"
            with open(args_path, "wb") as fh:
                pickle.dump((config, semantics, pruning, queries,
                             journal_path, out_path, kill_seed), fh)
            for attempt in range(10):
                code = _crash_pass(args_path, tmp_path / "child.log")
                if code == 0:
                    break
                assert code == -signal.SIGKILL, (
                    code, (tmp_path / "child.log").read_text())
                kills += 1
            else:
                pytest.fail("crash/resume loop did not converge in "
                            "10 passes")
            if kills:
                break
        assert kills >= 1, "no chaos schedule killed the process"

        with open(out_path, "rb") as fh:
            resumed, counters, _ = pickle.load(fh)
        assert resumed == baseline
        assert counters["shares_skipped"] >= 1
        assert counters["records_replayed"] == counters["shares_skipped"]

        # The plaintext oracle agrees (differential check, Sec. 2.1).
        engine = _engine(dataset, config, semantics, pruning)
        try:
            for query, key in zip(queries, resumed):
                _, candidates = engine.candidate_balls(query)
                truth = ground_truth_positive_ids(query, candidates)
                assert set(key[3]) == truth
        finally:
            engine.close()


# ---------------------------------------------------------------------------
# Differential oracle + in-process crash simulation (fast path)
# ---------------------------------------------------------------------------
class TestResumeDifferential:
    """Truncation-simulated crashes (exactly the bytes ``kill -9``
    mid-write leaves behind): resumed == uninterrupted == plaintext
    oracle, per semantics."""

    @pytest.mark.parametrize("semantics", [Semantics.HOM,
                                           Semantics.SUB_ISO,
                                           Semantics.SSIM])
    def test_resumed_equals_encrypted_equals_oracle(
            self, dataset, test_config, tmp_path, semantics):
        queries = _queries(dataset, semantics, count=3, distinct=2)
        graph = dataset.graph_for(semantics)
        baseline = QueryBatchEngine(
            Prilo.setup(graph, test_config)).serve(queries)

        path = tmp_path / "run.journal"
        journal = RunJournal(path, journal_key(test_config.seed))
        first = QueryBatchEngine(Prilo.setup(graph, test_config),
                                 journal=journal).serve(queries)
        journal.close()
        total = first.journal.checkpoints_written
        assert total >= len(queries)

        # Crash after roughly half the checkpoints (plus framing records).
        _truncate_after(path, 2 + total // 2)

        journal = RunJournal(path, journal_key(test_config.seed))
        engine = Prilo.setup(graph, test_config)
        resumed = QueryBatchEngine(engine, journal=journal).serve(queries)
        journal.close()
        assert resumed.journal.shares_skipped >= 1
        assert resumed.journal.checkpoints_written >= 1

        assert ([_answer_key(r) for r in resumed.results]
                == [_answer_key(r) for r in first.results]
                == [_answer_key(r) for r in baseline.results])
        for query, result in zip(queries, resumed.results):
            _, candidates = engine.candidate_balls(query)
            assert (result.match_ball_ids
                    == ground_truth_positive_ids(query, candidates))

    def test_resume_on_other_backend_allowed(self, dataset, test_config,
                                             tmp_path):
        """Scheduling knobs are outside the fingerprint: a serial-run
        journal resumes on the process backend with identical answers."""
        queries = _queries(dataset, Semantics.HOM)
        path = tmp_path / "run.journal"
        journal = RunJournal(path, journal_key(test_config.seed))
        first = QueryBatchEngine(Prilo.setup(dataset.graph, test_config),
                                 journal=journal).serve(queries)
        journal.close()
        _truncate_after(path, 4)

        process_config = replace(test_config, executor="process",
                                 parallelism=2)
        journal = RunJournal(path, journal_key(test_config.seed))
        with QueryBatchEngine(Prilo.setup(dataset.graph, process_config),
                              journal=journal) as server:
            resumed = server.serve(queries)
        journal.close()
        assert ([_answer_key(r) for r in resumed.results]
                == [_answer_key(r) for r in first.results])

    def test_fingerprint_mismatch_refused(self, dataset, test_config,
                                          tmp_path):
        queries = _queries(dataset, Semantics.HOM)
        path = tmp_path / "run.journal"
        journal = RunJournal(path, journal_key(test_config.seed))
        QueryBatchEngine(Prilo.setup(dataset.graph, test_config),
                         journal=journal).serve(queries)
        journal.close()

        other = replace(test_config, radii=(1, 2))
        journal = RunJournal(path, journal_key(test_config.seed))
        with pytest.raises(JournalError, match="different engine"):
            QueryBatchEngine(Prilo.setup(dataset.graph, other),
                             journal=journal).serve(queries)
        journal.close()

    def test_committed_answer_cross_checked(self, dataset, test_config,
                                            tmp_path):
        """A full journal replays every commit and cross-checks digests;
        a forged commit digest is an integrity violation."""
        queries = _queries(dataset, Semantics.HOM)
        path = tmp_path / "run.journal"
        journal = RunJournal(path, journal_key(test_config.seed))
        QueryBatchEngine(Prilo.setup(dataset.graph, test_config),
                         journal=journal).serve(queries)

        # Honest resume: every commit replayed, digests agree.
        resumed = QueryBatchEngine(Prilo.setup(dataset.graph, test_config),
                                   journal=journal).serve(queries)
        assert resumed.admission.replayed_commits == len(queries)

        # Forge a commit for query 0 with a bogus digest.
        key = query_idempotency_key(journal.key, queries[0], 0)
        journal.append(RecordType.QUERY_COMMIT,
                       {"query": key, "index": 0,
                        "answer_digest": "f" * 64})
        with pytest.raises(JournalError, match="integrity"):
            QueryBatchEngine(Prilo.setup(dataset.graph, test_config),
                             journal=journal).serve(queries)
        journal.close()


# ---------------------------------------------------------------------------
# Satellite 1: fault metrics merge across a resumed run, counted once
# ---------------------------------------------------------------------------
class TestFaultMetricsMerge:
    def test_replayed_fault_events_counted_exactly_once(
            self, dataset, test_config, tmp_path):
        """Chaos injections journaled with their share replay exactly once
        after a crash: the resumed run's eval-share fault events equal the
        uninterrupted chaotic run's."""
        chaos = ChaosPolicy(seed=11, fault_rate=0.6)
        config = replace(test_config, chaos=chaos)
        queries = _queries(dataset, Semantics.HOM)

        def eval_events(report):
            return [[e.as_dict() for e in r.metrics.faults.events
                     if e.key.startswith(("eval:", "verify:"))]
                    for r in report.results]

        baseline = QueryBatchEngine(
            Prilo.setup(dataset.graph, config)).serve(queries)
        assert any(events for events in eval_events(baseline)), \
            "chaos schedule injected nothing; test is vacuous"

        path = tmp_path / "run.journal"
        journal = RunJournal(path, journal_key(config.seed))
        first = QueryBatchEngine(Prilo.setup(dataset.graph, config),
                                 journal=journal).serve(queries)
        journal.close()
        assert eval_events(first) == eval_events(baseline)
        _truncate_after(path, 2 + first.journal.checkpoints_written // 2)

        journal = RunJournal(path, journal_key(config.seed))
        resumed = QueryBatchEngine(Prilo.setup(dataset.graph, config),
                                   journal=journal).serve(queries)
        journal.close()
        assert resumed.journal.shares_skipped >= 1
        # Pre-crash events replayed from the journal + post-crash events
        # re-recorded live == the uninterrupted run's events, exactly once.
        assert eval_events(resumed) == eval_events(baseline)
        if any(events for events in eval_events(baseline)[:1]):
            assert resumed.journal.replayed_fault_events >= 0

    def test_tampered_share_re_evaluated(self, dataset, test_config,
                                         tmp_path):
        """A journal whose share records fail the keyed digest falls back
        to live evaluation -- same answers, tamper counted."""
        queries = _queries(dataset, Semantics.HOM)

        # Write the journal under a *different* key: every share record
        # authenticates against the wrong key on replay.
        path = tmp_path / "run.journal"
        journal = RunJournal(path, b"not-the-derived-key")
        QueryBatchEngine(Prilo.setup(dataset.graph, test_config),
                         journal=journal).serve(queries)
        journal.close()

        journal = RunJournal(path, journal_key(test_config.seed))
        state = journal.replay()
        assert state.tampered_records > 0
        journal.close()

    def test_wrong_shape_outcome_recomputed(self, dataset, test_config,
                                            tmp_path):
        """An authenticated record whose payload is not a ShareOutcome
        (a forged pickle under a leaked key) is counted as tampered and
        the share recomputed -- answers unchanged."""
        queries = _queries(dataset, Semantics.HOM)
        baseline = QueryBatchEngine(
            Prilo.setup(dataset.graph, test_config)).serve(queries)

        path = tmp_path / "run.journal"
        journal = RunJournal(path, journal_key(test_config.seed))
        first = QueryBatchEngine(Prilo.setup(dataset.graph, test_config),
                                 journal=journal).serve(queries)
        # Overwrite query 0's first share with a wrong-shape payload
        # (later records win on replay).
        key = query_idempotency_key(journal.key, queries[0], 0)
        share_key = sorted(journal.replay().queries[key].shares)[0]
        journal.append_share(key, share_key, {"not": "a ShareOutcome"})

        resumed = QueryBatchEngine(Prilo.setup(dataset.graph, test_config),
                                   journal=journal).serve(queries)
        journal.close()
        assert resumed.journal.tampered_records == 1
        assert resumed.journal.shares_evaluated == 1  # just the bad one
        assert ([_answer_key(r) for r in resumed.results]
                == [_answer_key(r) for r in baseline.results])


# ---------------------------------------------------------------------------
# Exactly-once counter merge across repeated resumes (regression)
# ---------------------------------------------------------------------------
class TestResumeTwiceCounters:
    """Regression for the dropped ``pm:p<k>`` fault events.

    ``_PM_EVENT_PREFIXES`` originally listed only the sealed-channel and
    ECALL coordinates (``bf-blob:``, ``enclave-mem:``), so a fault hitting
    the executor's PM share fan-out -- coordinate ``pm:p<k>`` -- was never
    journaled with the PM record.  A resume that *successfully* replayed
    the PM verdicts then silently lost those events: answers matched but
    post-resume fault totals under-counted the cold run's.  This test
    crashes after the first PM record, resumes, then resumes again with a
    complete journal, asserting full fault-event and cache-counter
    equality with the uninterrupted chaotic run each time.
    """

    # Attestation rejection is chaos-decided per ``reattest:`` coordinate,
    # so with it enabled every resume adds legitimate resume-only events
    # (and failed re-attestation recomputes PMs, hiding the replay path
    # this test pins down).  Exclude it; the remaining kinds still hit the
    # PM fan-out.
    KINDS = tuple(k for k in INJECTABLE_KINDS
                  if k != FaultKind.ENCLAVE_ATTESTATION)

    @staticmethod
    def _fault_events(report):
        return [sorted((e.kind, e.key, e.action, e.attempt)
                       for e in r.metrics.faults.events)
                for r in report.results]

    @staticmethod
    def _pad_caches(report):
        return [{name: (stats.hits, stats.misses, stats.evictions)
                 for name, stats in sorted(r.metrics.caches.items())
                 if name != "cmm"}  # cmm misses legitimately drop on
                for r in report.results]  # resume: replay skips enumeration

    def test_counters_equal_cold_run_after_two_resumes(
            self, dataset, test_config, tmp_path):
        chaos = ChaosPolicy(seed=11, fault_rate=0.5, kinds=self.KINDS)
        config = replace(test_config, chaos=chaos)
        queries = _queries(dataset, Semantics.SUB_ISO)

        def run(journal=None):
            engine = _engine(dataset, config, Semantics.SUB_ISO, True)
            return QueryBatchEngine(engine, journal=journal).serve(queries)

        cold = run()
        assert any(ev for ev in self._fault_events(cold)), \
            "chaos schedule injected nothing; test is vacuous"
        assert any(any(key.startswith("pm:") for _, key, _, _ in ev)
                   for ev in self._fault_events(cold)), \
            "no PM fan-out fault; the regression path is not exercised"

        path = tmp_path / "run.journal"
        journal = RunJournal(path, journal_key(config.seed))
        run(journal)
        journal.close()

        # Crash right after BATCH_ADMIT + QUERY_BEGIN(q0) + q0's PM
        # record: the first resume must replay the PM verdicts *and* the
        # executor-level fault events journaled with them.
        _truncate_after(path, 3)
        journal = RunJournal(path, journal_key(config.seed))
        first = run(journal)
        journal.close()
        assert first.journal.pm_replays >= 1
        assert self._fault_events(first) == self._fault_events(cold)
        assert self._pad_caches(first) == self._pad_caches(cold)
        assert ([_answer_key(r) for r in first.results]
                == [_answer_key(r) for r in cold.results])

        # Second resume over the now-complete journal: committed answers
        # replay wholesale, counters still merge exactly once.
        journal = RunJournal(path, journal_key(config.seed))
        second = run(journal)
        journal.close()
        assert second.admission.replayed_commits == len(queries)
        assert self._fault_events(second) == self._fault_events(cold)
        assert self._pad_caches(second) == self._pad_caches(cold)
        assert ([_answer_key(r) for r in second.results]
                == [_answer_key(r) for r in cold.results])


# ---------------------------------------------------------------------------
# Pruning-message replay: re-attestation gate, fallback to recomputation
# ---------------------------------------------------------------------------
class TestPMReplay:
    """A resume reuses journaled (Dealer-visible) PM verdicts only after
    every player's enclave re-attests; any failure -- a rogue report or a
    wrong-shape record -- degrades soundly to recomputation."""

    def _runs(self, dataset, test_config, tmp_path):
        queries = _queries(dataset, Semantics.HOM)
        baseline = QueryBatchEngine(
            _engine(dataset, test_config, Semantics.HOM, True)).serve(queries)
        journal = RunJournal(tmp_path / "run.journal",
                             journal_key(test_config.seed))
        first = QueryBatchEngine(
            _engine(dataset, test_config, Semantics.HOM, True),
            journal=journal).serve(queries)
        assert ([_answer_key(r) for r in first.results]
                == [_answer_key(r) for r in baseline.results])
        return queries, baseline, journal

    def test_pm_verdicts_replayed_after_reattestation(
            self, dataset, test_config, tmp_path):
        queries, baseline, journal = self._runs(dataset, test_config,
                                                tmp_path)
        engine = _engine(dataset, test_config, Semantics.HOM, True)
        resumed = QueryBatchEngine(engine, journal=journal).serve(queries)
        journal.close()

        assert resumed.journal.pm_replays == len(queries)
        assert resumed.journal.reattestations == (
            len(queries) * test_config.k_players)
        assert resumed.journal.tampered_records == 0
        assert ([_answer_key(r) for r in resumed.results]
                == [_answer_key(r) for r in baseline.results])

    def test_rogue_attestation_report_forces_recompute(
            self, dataset, test_config, tmp_path):
        """One player returning a report for the wrong application makes
        every query recompute its PMs -- byte-identical answers, zero
        replays, a DEGRADED event per query."""
        from repro.framework.faults import FaultAction

        queries, baseline, journal = self._runs(dataset, test_config,
                                                tmp_path)
        engine = _engine(dataset, test_config, Semantics.HOM, True)
        rogue = engine.players[0].enclave
        genuine = rogue.attest()
        rogue.attest = lambda: replace(
            genuine, measurement=measure("rogue-enclave/9.9"))

        resumed = QueryBatchEngine(engine, journal=journal).serve(queries)
        journal.close()

        assert resumed.journal.pm_replays == 0
        assert resumed.journal.reattestations >= len(queries)
        degraded = [e for r in resumed.results
                    for e in r.metrics.faults.events
                    if e.key.startswith("reattest:")
                    and e.action == FaultAction.DEGRADED]
        assert len(degraded) == len(queries)
        # Recomputation runs against healthy enclave state, so the
        # answers -- PM positives included -- stay byte-identical.
        assert ([_answer_key(r) for r in resumed.results]
                == [_answer_key(r) for r in baseline.results])

    def test_wrong_shape_pm_record_recomputed(self, dataset, test_config,
                                              tmp_path):
        """A forged PM record (authenticated but not PM-shaped) is counted
        as tampered and that query's PMs recomputed; the untouched query
        still replays."""
        queries, baseline, journal = self._runs(dataset, test_config,
                                                tmp_path)
        key = query_idempotency_key(journal.key, queries[0], 0)
        journal.append_share(key, PriloStar.PM_SHARE_KEY,
                             {"ball_ids": "not-a-tuple"})

        resumed = QueryBatchEngine(
            _engine(dataset, test_config, Semantics.HOM, True),
            journal=journal).serve(queries)
        journal.close()

        assert resumed.journal.tampered_records == 1
        assert resumed.journal.pm_replays == len(queries) - 1
        assert ([_answer_key(r) for r in resumed.results]
                == [_answer_key(r) for r in baseline.results])


# ---------------------------------------------------------------------------
# Admission control: overload shedding, ball budget, deadlines, drain
# ---------------------------------------------------------------------------
class TestAdmissionControl:
    def test_queue_bound_sheds_deterministically(self, dataset,
                                                 test_config):
        queries = _queries(dataset, Semantics.HOM, count=4, distinct=2)
        with QueryBatchEngine(Prilo.setup(dataset.graph, test_config),
                              queue_bound=2) as server:
            report = server.serve(queries)
        statuses = [o.status for o in report.outcomes]
        assert statuses == [QueryStatus.OK, QueryStatus.OK,
                            QueryStatus.REJECTED_OVERLOAD,
                            QueryStatus.REJECTED_OVERLOAD]
        assert report.admission.shed_overload == 2
        assert report.admission.completed == 2
        assert len(report.results) == 2
        # Admitted prefix answers are unaffected by the shedding.
        baseline = QueryBatchEngine(
            Prilo.setup(dataset.graph, test_config)).serve(queries[:2])
        assert ([_answer_key(r) for r in report.results]
                == [_answer_key(r) for r in baseline.results])

    def test_ball_budget_rejects_pre_evaluation(self, dataset, test_config):
        config = replace(test_config, ball_budget=1)
        query = _queries(dataset, Semantics.HOM)[0]
        engine = Prilo.setup(dataset.graph, config)
        _, candidates = engine.candidate_balls(query)
        assert len(candidates) > 1  # otherwise the test is vacuous
        with pytest.raises(BallBudgetExceeded) as info:
            engine.run(query)
        assert info.value.candidates == len(candidates)
        assert info.value.budget == 1

        with QueryBatchEngine(Prilo.setup(dataset.graph, config)) as server:
            report = server.serve([query])
        assert (report.outcomes[0].status
                == QueryStatus.REJECTED_BALL_BUDGET)
        assert report.admission.shed_ball_budget == 1
        assert not report.results

    def test_deadline_reports_partial_state(self, dataset, test_config):
        config = replace(test_config, deadline_ms=1e-6)
        query = _queries(dataset, Semantics.HOM)[0]
        engine = Prilo.setup(dataset.graph, config)
        with pytest.raises(DeadlineExceeded) as info:
            engine.run(query)
        exc = info.value
        assert exc.metrics is not None
        assert exc.metrics.journal.deadline_hits == 1
        assert exc.elapsed_ms >= exc.budget_ms
        assert exc.where  # names the phase boundary that tripped

        with QueryBatchEngine(Prilo.setup(dataset.graph, config)) as server:
            report = server.serve([query])
        outcome = report.outcomes[0]
        assert outcome.status == QueryStatus.DEADLINE_EXCEEDED
        assert outcome.metrics is not None
        assert report.admission.deadline_exceeded == 1
        assert report.journal.deadline_hits == 1

    def test_generous_deadline_changes_nothing(self, dataset, test_config):
        queries = _queries(dataset, Semantics.HOM)
        baseline = QueryBatchEngine(
            Prilo.setup(dataset.graph, test_config)).serve(queries)
        config = replace(test_config, deadline_ms=600_000.0)
        report = QueryBatchEngine(
            Prilo.setup(dataset.graph, config)).serve(queries)
        assert ([_answer_key(r) for r in report.results]
                == [_answer_key(r) for r in baseline.results])

    def test_deadline_object(self):
        deadline = Deadline(1e-6)
        with pytest.raises(DeadlineExceeded):
            deadline.check("unit test")
        assert Deadline(600_000.0).expired is False

    def test_drain_stops_admission_and_journals(self, dataset, test_config,
                                                tmp_path):
        queries = _queries(dataset, Semantics.HOM, count=3, distinct=2)
        path = tmp_path / "run.journal"
        journal = RunJournal(path, journal_key(test_config.seed))
        server = QueryBatchEngine(Prilo.setup(dataset.graph, test_config),
                                  journal=journal)
        server.request_drain()
        report = server.serve(queries)
        server.close()
        journal.close()
        assert [o.status for o in report.outcomes] == (
            [QueryStatus.DRAINED] * 3)
        assert report.admission.drained == 3
        assert not report.results
        state = RunJournal(path, journal_key(test_config.seed)).replay()
        assert state.drained

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PriloConfig(deadline_ms=0)
        with pytest.raises(ValueError):
            PriloConfig(deadline_ms=True)
        with pytest.raises(ValueError):
            PriloConfig(ball_budget=0)
        with pytest.raises(ValueError):
            PriloConfig(ball_budget=True)
        with pytest.raises(ValueError):
            QueryBatchEngine(object(), queue_bound=0)


# ---------------------------------------------------------------------------
# Chaos vocabulary
# ---------------------------------------------------------------------------
class TestKillProcessChaos:
    def test_kill_process_is_opt_in(self):
        assert FaultKind.KILL_PROCESS not in INJECTABLE_KINDS
        assert FaultKind.KILL_PROCESS in VALID_KINDS
        # Default chaos policies therefore never SIGKILL the test suite.
        policy = ChaosPolicy(seed=1, fault_rate=1.0)
        assert not policy.decides(FaultKind.KILL_PROCESS, "kill:x")

    def test_kill_schedule_deterministic(self):
        policy = ChaosPolicy(seed=1, fault_rate=0.5,
                             kinds=(FaultKind.KILL_PROCESS,))
        decisions = [policy.decides(FaultKind.KILL_PROCESS, f"kill:{i}")
                     for i in range(64)]
        assert any(decisions) and not all(decisions)
        again = [policy.decides(FaultKind.KILL_PROCESS, f"kill:{i}")
                 for i in range(64)]
        assert decisions == again

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ChaosPolicy(seed=1, fault_rate=0.5, kinds=("made_up",))
