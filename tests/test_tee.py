"""Tests for the simulated enclave, secure channel, and attestation."""

import json

import pytest

from repro.crypto.stream_cipher import StreamCipher
from repro.filters.bloom import BloomFilter
from repro.tee.attestation import AttestationReport, measure
from repro.tee.channel import AttestationFailure, SecureChannel
from repro.tee.enclave import Enclave, EnclaveMemoryError


def make_session(memory_limit: int = 1 << 20):
    enclave = Enclave(memory_limit_bytes=memory_limit)
    key = StreamCipher.generate_key(seed=1)
    channel = SecureChannel.establish(enclave, key)
    return enclave, channel


def seal_encodings(channel, entries, eta):
    payload = json.dumps({"eta": eta, "entries": entries}).encode()
    return channel.seal(payload)


def ball_filter_blob(encodings):
    filt = BloomFilter(1024, 3)
    filt.add(0)
    filt.update(encodings)
    return filt.to_bytes()


class TestAttestation:
    def test_measure_deterministic(self):
        assert measure("app") == measure("app")
        assert measure("app") != measure("other")

    def test_report_verify(self):
        report = AttestationReport(measurement=measure("x"), enclave_id=1)
        assert report.verify("x")
        assert not report.verify("y")

    def test_channel_rejects_wrong_identity(self):
        enclave = Enclave()
        with pytest.raises(AttestationFailure):
            SecureChannel.establish(enclave, StreamCipher.generate_key(1),
                                    expected_identity="evil-app")


class TestEnclaveSession:
    def test_ecall_requires_session(self):
        enclave = Enclave()
        with pytest.raises(PermissionError):
            enclave.load_query_encodings(b"blob")
        with pytest.raises(PermissionError):
            enclave.check_ball(b"blob", "'A'")

    def test_check_requires_loaded_encodings(self):
        enclave, channel = make_session()
        with pytest.raises(RuntimeError):
            enclave.check_ball(ball_filter_blob([]), "'A'")


class TestBFChecking:
    def test_matching_vertex_passes(self):
        enclave, channel = make_session()
        enclave.load_query_encodings(
            seal_encodings(channel, [["'A'", [11, 22, 0]]], eta=3))
        result = enclave.check_ball(ball_filter_blob([11, 22]), "'A'")
        assert int.from_bytes(channel.open(result), "big") == 1

    def test_missing_encoding_fails_vertex(self):
        enclave, channel = make_session()
        enclave.load_query_encodings(
            seal_encodings(channel, [["'A'", [11, 22, 33]]], eta=3))
        result = enclave.check_ball(ball_filter_blob([11, 22]), "'A'")
        assert int.from_bytes(channel.open(result), "big") == 0

    def test_label_mismatch_vertices_skipped(self):
        enclave, channel = make_session()
        enclave.load_query_encodings(
            seal_encodings(channel, [["'B'", [11, 0, 0]]], eta=3))
        result = enclave.check_ball(ball_filter_blob([11]), "'A'")
        assert int.from_bytes(channel.open(result), "big") == 0

    def test_pad_zeros_always_pass(self):
        """Vertices with no trees are all-pads and must pass (Sec. 4.1.2)."""
        enclave, channel = make_session()
        enclave.load_query_encodings(
            seal_encodings(channel, [["'A'", [0, 0, 0]]], eta=3))
        result = enclave.check_ball(ball_filter_blob([]), "'A'")
        assert int.from_bytes(channel.open(result), "big") == 1

    def test_eta_mismatch_rejected(self):
        enclave, channel = make_session()
        with pytest.raises(ValueError, match="eta"):
            enclave.load_query_encodings(
                seal_encodings(channel, [["'A'", [1, 2]]], eta=3))


class TestMetering:
    def test_bytes_and_ecalls_counted(self):
        enclave, channel = make_session()
        blob = seal_encodings(channel, [["'A'", [0, 0]]], eta=2)
        enclave.load_query_encodings(blob)
        assert enclave.metrics.ecalls == 1
        assert enclave.metrics.bytes_in == len(blob)
        fblob = ball_filter_blob([5])
        enclave.check_ball(fblob, "'A'")
        assert enclave.metrics.ecalls == 2
        assert enclave.metrics.bytes_in == len(blob) + len(fblob)
        assert enclave.metrics.bytes_out > 0

    def test_memory_budget_enforced(self):
        enclave, channel = make_session(memory_limit=64)
        with pytest.raises(EnclaveMemoryError):
            enclave.load_query_encodings(
                seal_encodings(channel, [["'A'", [0] * 64]], eta=64))

    def test_filter_memory_freed_after_check(self):
        enclave, channel = make_session()
        enclave.load_query_encodings(
            seal_encodings(channel, [["'A'", [0, 0]]], eta=2))
        before = enclave.metrics.current_memory
        enclave.check_ball(ball_filter_blob([1, 2, 3]), "'A'")
        assert enclave.metrics.current_memory == before
        assert enclave.metrics.peak_memory > before


class TestChannel:
    def test_seal_open_roundtrip(self):
        _, channel = make_session()
        assert channel.open(channel.seal(b"data")) == b"data"
        assert channel.bytes_sealed > 0


class TestSessionState:
    def test_has_session_flag(self):
        enclave = Enclave()
        assert not enclave.has_session
        SecureChannel.establish(enclave, StreamCipher.generate_key(seed=9))
        assert enclave.has_session
