"""Tests for the experiment harnesses (soundness + shape properties)."""

import pytest

from repro.graph.query import Semantics
from repro.workloads.datasets import load_dataset
from repro.workloads.experiments import (
    ball_statistics,
    dataset_statistics,
    ldbc_study,
    pruning_study,
    retrieval_study,
    user_side_costs,
)


@pytest.fixture(scope="module")
def queries(dataset):
    return dataset.random_queries(2, size=4, diameter=2, seed=4)


class TestPruningStudy:
    def test_soundness_across_methods(self, dataset, queries, test_config):
        study = pruning_study(dataset, queries, config=test_config)
        for method, counts in study.confusion.items():
            assert counts.fn == 0, f"{method} pruned a true positive"

    def test_fig2a_ordering(self, dataset, queries, test_config):
        """Fig. 2(a): twiglets prune at least as much as paths, which prune
        at least as much as neighbor labels (remaining counts ordered)."""
        study = pruning_study(dataset, queries, config=test_config)
        assert study.remaining("twiglet") <= study.remaining("path")
        assert study.remaining("path") <= study.remaining("neighbor")
        assert study.remaining("neighbor") <= study.remaining("all")

    def test_combined_at_most_parts(self, dataset, queries, test_config):
        study = pruning_study(dataset, queries, config=test_config)
        combined = study.confusion["bf+twiglet"]
        assert combined.tp + combined.fp <= study.remaining("twiglet")
        assert combined.tp + combined.fp <= study.remaining("bf")

    def test_per_ball_records(self, dataset, queries, test_config):
        study = pruning_study(dataset, queries, config=test_config)
        assert len(study.balls) == study.candidates
        for record in study.balls[:10]:
            assert set(record.verdicts) >= set(study.methods)
            assert all(c >= 0 for c in record.costs.values())

    def test_requires_queries(self, dataset, test_config):
        with pytest.raises(ValueError):
            pruning_study(dataset, [], config=test_config)


class TestRetrievalStudy:
    def test_records_per_query_and_k(self, dataset, queries, test_config):
        study = retrieval_study(dataset, queries, k_values=(2, 4),
                                config=test_config)
        assert len(study.records) == len(queries) * 2
        for record in study.records:
            assert record.candidates > 0
            assert 0 <= record.ppcr <= 1
            assert record.ssg_all_positives >= 0
            assert record.rsg_all_positives >= 0

    def test_mean_speedup_finite(self, dataset, queries, test_config):
        study = retrieval_study(dataset, queries, k_values=(2,),
                                config=test_config)
        assert study.mean_speedup() == study.mean_speedup(k=2)


class TestLdbcStudy:
    def test_ten_workloads(self, test_config):
        ds = load_dataset("ldbc", scale=0.15)
        records = ldbc_study(ds, Semantics.HOM, config=test_config)
        assert [r.workload for r in records] == [
            "Q3", "Q4", "Q5", "Q6", "Q9", "Q11", "Q12", "Q13", "Q15",
            "Q19"]
        for record in records:
            assert record.prilo_seconds >= 0
            assert record.prilo_star_seconds >= 0
            assert 0 <= record.ppcr <= 1


class TestUserCosts:
    def test_exp1_records(self, dataset, queries, test_config):
        records = user_side_costs(dataset, queries, config=test_config)
        assert len(records) == len(queries)
        for record in records:
            assert record.preprocessing_seconds > 0
            assert record.user_to_sp_bytes > 0


class TestTables:
    def test_table3_row(self, dataset):
        row = dataset_statistics(dataset)
        assert row["vertices"] == dataset.graph.num_vertices
        assert row["edge_vertex_ratio"] > 0

    def test_table4_row(self, dataset, queries, test_config):
        row = ball_statistics(dataset, queries, test_config)
        assert row["avg_balls_per_query"] > 0
        assert row["avg_ball_vertices"] > 0
        assert row["max_degree"] > 0
