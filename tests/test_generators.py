"""Tests for the dataset generators and the Fig. 3 reconstruction."""

import pytest

from repro.graph.generators import (
    fig3_graph,
    fig3_query,
    power_law_graph,
    relabel_uniform,
    social_graph,
    uniform_random_graph,
)


class TestFig3Reconstruction:
    """Every claim the paper makes about Fig. 3 must hold on our graph."""

    def test_example4_cv_sets(self):
        g = fig3_graph()
        assert g.vertices_with_label("B") == {"v6"}
        assert g.vertices_with_label("A") == {"v2", "v4"}
        assert g.vertices_with_label("C") == {"v1", "v5", "v7"}
        assert g.vertices_with_label("D") == {"v3"}

    def test_example7_neighbor_label_sets(self):
        """L(v2)={C,D}, L(v4)={C}, L(v5)={A} (excluding own and B)."""
        g = fig3_graph()

        def lab(v):
            return {g.label(n) for n in g.neighbors(v)} - {g.label(v), "B"}

        assert lab("v2") == {"C", "D"}
        assert lab("v4") == {"C"}
        assert lab("v5") == {"A"}

    def test_v6_neighbors(self):
        g = fig3_graph()
        assert g.neighbors("v6") == {"v2", "v4", "v5"}

    def test_all_vertices_within_3_of_v6(self):
        g = fig3_graph()
        assert set(g.undirected_distances("v6", cutoff=3)) == set(g.vertices())

    def test_query_edges_match_example5_encoding(self):
        q = fig3_query()
        assert set(q.pattern.edges()) == {("u2", "u1"), ("u3", "u1"),
                                          ("u4", "u2"), ("u5", "u2")}


class TestUniformRandom:
    def test_exact_edge_count(self):
        g = uniform_random_graph(30, 50, 5, seed=1)
        assert g.num_vertices == 30
        assert g.num_edges == 50

    def test_deterministic(self):
        a = uniform_random_graph(20, 30, 4, seed=9)
        b = uniform_random_graph(20, 30, 4, seed=9)
        assert a == b

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            uniform_random_graph(3, 100, 2, seed=0)

    def test_bad_labels_rejected(self):
        with pytest.raises(ValueError):
            uniform_random_graph(3, 1, 0, seed=0)


class TestPowerLaw:
    def test_basic_shape(self):
        g = power_law_graph(200, 3, 10, seed=4)
        assert g.num_vertices == 200
        assert g.num_edges >= 3 * (200 - 4)
        assert len(g.alphabet) <= 10

    def test_heavy_tail(self):
        """Preferential attachment should produce a hub well above the
        median degree."""
        g = power_law_graph(400, 2, 5, seed=8)
        degrees = sorted(g.degree(v) for v in g.vertices())
        assert degrees[-1] >= 4 * degrees[len(degrees) // 2]

    def test_deterministic(self):
        assert power_law_graph(50, 2, 4, seed=3) == power_law_graph(
            50, 2, 4, seed=3)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            power_law_graph(5, 0, 3)
        with pytest.raises(ValueError):
            power_law_graph(3, 3, 3)
        with pytest.raises(ValueError):
            power_law_graph(50, 2, 3, reciprocity=1.5)


class TestSocialGraph:
    def test_locality(self):
        """Low rewiring keeps radius-3 balls a small fraction of the graph."""
        from repro.graph.ball import extract_ball

        g = social_graph(500, 3, 0.02, 20, seed=6)
        ball = extract_ball(g, 250, 3)
        assert ball.size < g.num_vertices / 4

    def test_hubs_inflate_max_degree(self):
        plain = social_graph(300, 3, 0.05, 10, seed=6)
        hubby = social_graph(300, 3, 0.05, 10, seed=6, hubs=3,
                             hub_degree=50)
        assert hubby.max_degree() > plain.max_degree() * 2

    def test_validation(self):
        with pytest.raises(ValueError):
            social_graph(10, 0, 0.1, 3)
        with pytest.raises(ValueError):
            social_graph(6, 3, 0.1, 3)
        with pytest.raises(ValueError):
            social_graph(50, 3, 1.5, 3)


class TestRelabel:
    def test_topology_preserved(self):
        g = power_law_graph(80, 2, 10, seed=2)
        r = relabel_uniform(g, 4, seed=5)
        assert set(r.vertices()) == set(g.vertices())
        assert set(r.edges()) == set(g.edges())
        assert len(r.alphabet) <= 4
