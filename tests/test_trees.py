"""Tests for h-label binary trees (Def. 3, Fig. 6/7, Alg. 4, Table 1)."""

import math

import pytest

from repro.core.encoding import LabelCodec
from repro.core.trees import (
    BF_TOPOLOGIES,
    TOPOLOGY_IX,
    TOPOLOGY_VII,
    TOPOLOGY_VIII,
    TOPOLOGY_X,
    bf_threshold_exceeded,
    canonical_tree,
    enumerate_center_tree_encodings,
    iter_center_trees,
    max_tree_count,
)
from repro.graph.generators import fig3_graph, fig3_query, social_graph
from repro.graph.labeled_graph import LabeledGraph


@pytest.fixture(scope="module")
def codec():
    return LabelCodec.from_alphabet({"A", "B", "C", "D"})


@pytest.fixture(scope="module")
def paper_codec():
    return LabelCodec.from_alphabet({"A", "B", "C", "D"}, paper_base=True)


class TestTopologies:
    def test_counts_and_tags_distinct(self):
        assert len({t.tag for t in BF_TOPOLOGIES}) == 4
        assert TOPOLOGY_VII.num_labels == 3
        assert TOPOLOGY_VIII.num_labels == 4
        assert TOPOLOGY_IX.num_labels == 5
        assert TOPOLOGY_X.num_labels == 6
        assert TOPOLOGY_X.symmetric
        assert not TOPOLOGY_IX.symmetric


class TestTable1:
    def test_formulas(self):
        """Table 1 closed forms at kappa = 8."""
        k = 8
        assert max_tree_count(TOPOLOGY_VII, k) == math.perm(7, 3)
        assert max_tree_count(TOPOLOGY_VIII, k) == (
            math.perm(7, 2) * math.comb(5, 2))
        assert max_tree_count(TOPOLOGY_IX, k) == (
            math.perm(7, 3) * math.comb(4, 2))
        assert max_tree_count(TOPOLOGY_X, k) == (
            math.comb(7, 2) * math.comb(5, 2) * math.comb(3, 2))

    def test_small_kappa_zero(self):
        assert max_tree_count(TOPOLOGY_X, 4) == 0

    def test_enumeration_bounded_by_table1(self, codec):
        """Property: actual distinct-tree counts never exceed Table 1."""
        g = social_graph(200, 3, 0.2, 4, seed=9)
        kappa = min(4, g.max_degree())
        for topology in BF_TOPOLOGIES:
            bound = max_tree_count(topology, kappa)
            for v in list(g.vertices())[:25]:
                encodings = {t.encode(codec)
                             for t in iter_center_trees(g, v, codec,
                                                        (topology,))}
                assert len(encodings) <= max(bound, 0) or bound == 0


class TestFig7Example:
    def test_vii_tree_at_v6(self, paper_codec):
        """Example 7 + Fig. 7: T^vii at v6 = (A, C, (D,)) encoding 77."""
        g = fig3_graph()
        trees = list(iter_center_trees(g, "v6", paper_codec,
                                       (TOPOLOGY_VII,)))
        positional = {paper_codec.encode_positions(t.position_labels())
                      for t in trees}
        assert 77 in positional

    def test_query_side_tree_exists(self, paper_codec):
        """u1 of Q roots the matching tree [B](A)(C)(D under A)."""
        q = fig3_query()
        trees = list(iter_center_trees(q.pattern, "u1", paper_codec,
                                       (TOPOLOGY_VII,)))
        positional = {paper_codec.encode_positions(t.position_labels())
                      for t in trees}
        assert 77 in positional


class TestDistinctLabels:
    def test_all_labels_distinct_in_every_tree(self, codec):
        g = social_graph(150, 3, 0.2, 4, seed=2)
        for v in list(g.vertices())[:20]:
            for tree in iter_center_trees(g, v, codec):
                labels = tree.position_labels() + (g.label(v),)
                assert len(set(labels)) == len(labels)


class TestCanonicalization:
    def test_grandchild_pairs_sorted(self, codec):
        tree = canonical_tree(TOPOLOGY_VIII, codec, "A", "B",
                              ["C", "D"], [])
        assert tree.left_grand == ("D", "C")  # descending codes

    def test_topology_x_child_order(self, codec):
        a = canonical_tree(TOPOLOGY_X, codec, "A", "B", ["C"], ["D"])
        b = canonical_tree(TOPOLOGY_X, codec, "B", "A", ["D"], ["C"])
        assert a == b

    def test_asymmetric_children_not_swapped(self, codec):
        a = canonical_tree(TOPOLOGY_VII, codec, "A", "B", ["C"], [])
        b = canonical_tree(TOPOLOGY_VII, codec, "B", "A", ["C"], [])
        assert a != b

    def test_isomorphic_subtrees_encode_identically(self):
        """Two vertex-disjoint subtrees projecting the same label tree must
        collide in encoding space (that is the whole point)."""
        # Root B with two A-children (1 and 4), each carrying {C, D}
        # grandchildren, plus a leaf E-child serving as the right child.
        labels = {0: "B", 1: "A", 2: "E", 4: "A",
                  5: "C", 6: "D", 7: "C", 8: "D"}
        edges = [(0, 1), (0, 2), (0, 4), (1, 5), (1, 6), (4, 7), (4, 8)]
        g = LabeledGraph.from_edges(labels, edges)
        codec = LabelCodec.from_alphabet({"A", "B", "C", "D", "E"})
        trees = [t for t in iter_center_trees(g, 0, codec,
                                              (TOPOLOGY_VIII,))
                 if t.left == "A" and t.right == "E"
                 and t.left_grand == ("D", "C")]
        # Both A-subtrees project the same labeled tree ...
        assert len(trees) == 2
        # ... and it encodes once.
        assert len({t.encode(codec) for t in trees}) == 1


class TestEnumerationControls:
    def test_max_trees_truncates(self, codec):
        g = social_graph(150, 4, 0.3, 4, seed=6)
        hub = max(g.vertices(), key=g.degree)
        encodings, truncated = enumerate_center_tree_encodings(
            g, hub, codec, max_trees=1)
        if encodings:
            assert len(encodings) <= 1 or truncated

    def test_labels_outside_codec_skipped(self):
        labels = {0: "B", 1: "A", 2: "Z", 3: "C", 4: "D"}
        edges = [(0, 1), (0, 2), (1, 3), (1, 4)]
        g = LabeledGraph.from_edges(labels, edges)
        codec = LabelCodec.from_alphabet({"A", "B", "C", "D"})
        for tree in iter_center_trees(g, 0, codec):
            assert "Z" not in tree.position_labels()


class TestThreshold:
    def test_fig3_center_below_threshold(self):
        g = fig3_graph()
        assert not bf_threshold_exceeded(g, "v6", threshold=5)

    def test_dense_center_exceeds_small_threshold(self):
        # A center with many 3-label neighbors.
        labels = {0: "R"}
        edges = []
        next_id = 1
        for i in range(6):
            child = next_id
            labels[child] = f"c{i}"
            next_id += 1
            edges.append((0, child))
            for j in range(3):
                leaf = next_id
                labels[leaf] = f"l{i}{j}"
                next_id += 1
                edges.append((child, leaf))
        g = LabeledGraph.from_edges(labels, edges)
        assert bf_threshold_exceeded(g, 0, threshold=2)
        assert not bf_threshold_exceeded(g, 0, threshold=10)
