"""Incremental ball maintenance and standing queries over dynamic graphs.

Contract under test: ``ArtifactStore.apply_delta`` followed by a query
answers exactly like a from-scratch rebuild on the post-delta graph --
across all three semantics and both engines -- while re-encrypting only
the dirty balls; the updated Merkle root certifies post-delta serving
(including absence proofs once a delete empties a candidate catalog);
``QueryBatchEngine`` standing queries re-notify exactly when their match
set changes.
"""

from dataclasses import replace

import pytest

from repro.core.bf_pruning import BFConfig
from repro.crypto.keys import DataOwnerKey
from repro.framework.prilo import Prilo
from repro.framework.prilo_star import PriloStar
from repro.framework.server import CMMCache, QueryBatchEngine
from repro.framework.wire import canonical_answer_of_result
from repro.graph.delta import GraphDelta, random_delta
from repro.graph.query import Semantics
from repro.storage import (
    ArtifactStore,
    MerkleTree,
    verify_absent,
)

RADII = (2,)
SEED = 3  # matches test_config so store key == engine owner key
BF = BFConfig(eta=16, expected_trees=200)


@pytest.fixture(scope="module")
def key():
    return DataOwnerKey.generate(SEED)


def _build(root, graph, key):
    return ArtifactStore.create(root, graph, RADII, key, twiglet_h=3,
                                bf_config=BF)


def _config(test_config, pruning=False):
    config = replace(test_config, radii=RADII)
    if pruning:
        config = replace(config, use_twiglet=True, use_bf=True, bf=BF)
    return config


def _flat_answers(engine, queries):
    """Canonical answers with ball ids erased: the user-visible match
    multiset plus the match count, per query.  Incremental and rebuilt
    stores legitimately number balls differently (survivors keep their
    historical ids), so equality is over content, not coordinates."""
    out = []
    for query in queries:
        answer = canonical_answer_of_result(engine.run(query))
        out.append((sorted(m for ms in answer["matches"].values()
                           for m in ms),
                    answer["num_matches"]))
    return out


# ---------------------------------------------------------------------------
# the differential: apply_delta + query == rebuild + query
# ---------------------------------------------------------------------------
class TestDifferential:
    @pytest.mark.parametrize("semantics", [Semantics.HOM,
                                           Semantics.SUB_ISO,
                                           Semantics.SSIM])
    @pytest.mark.parametrize("engine_cls,pruning", [(Prilo, False),
                                                    (PriloStar, True)])
    def test_incremental_equals_rebuild(self, tmp_path, dataset,
                                        test_config, key, semantics,
                                        engine_cls, pruning):
        graph = dataset.graph_for(semantics).copy()
        store = _build(tmp_path / "incremental", graph, key)
        balls_before = len(store._manifest["balls"])

        delta = random_delta(graph, edge_fraction=0.02,
                             remove_vertices=1, seed=5)
        report = store.apply_delta(delta, graph, key)
        assert report.reencrypted + report.reused == balls_before \
            - report.removed
        assert report.graph_digest == store.manifest_graph_digest
        store.check(graph=graph, key=key)

        rebuilt = _build(tmp_path / "rebuilt", graph, key)
        config = _config(test_config, pruning)
        queries = dataset.random_queries(2, size=4, diameter=RADII[0],
                                         semantics=semantics, seed=13)
        incremental_engine = engine_cls.setup(graph, config, store=store)
        rebuilt_engine = engine_cls.setup(graph, config, store=rebuilt)
        try:
            assert _flat_answers(incremental_engine, queries) == \
                _flat_answers(rebuilt_engine, queries)
        finally:
            incremental_engine.close()
            rebuilt_engine.close()

    def test_repeated_deltas_stay_consistent(self, tmp_path, dataset,
                                             test_config, key):
        graph = dataset.graph.copy()
        store = _build(tmp_path / "store", graph, key)
        for seed in (21, 22):
            delta = random_delta(graph, edge_fraction=0.01, seed=seed)
            store.apply_delta(delta, graph, key)
        store.check(graph=graph, key=key)
        rebuilt = _build(tmp_path / "rebuilt", graph, key)
        queries = dataset.random_queries(1, size=4, diameter=RADII[0],
                                         seed=13)
        config = _config(test_config)
        incremental_engine = Prilo.setup(graph, config, store=store)
        rebuilt_engine = Prilo.setup(graph, config, store=rebuilt)
        try:
            assert _flat_answers(incremental_engine, queries) == \
                _flat_answers(rebuilt_engine, queries)
        finally:
            incremental_engine.close()
            rebuilt_engine.close()

    def test_empty_delta_touches_nothing(self, tmp_path, dataset, key):
        graph = dataset.graph.copy()
        store = _build(tmp_path / "store", graph, key)
        root_before = store.auth["root"]
        report = store.apply_delta(GraphDelta(), graph, key)
        assert report.dirty == report.added == report.removed == 0
        assert report.reencrypted == 0
        assert store.auth["root"] == root_before


# ---------------------------------------------------------------------------
# verified serving under the updated Merkle root
# ---------------------------------------------------------------------------
class TestUpdatedAuth:
    def test_certified_serving_after_delta(self, tmp_path, dataset,
                                           test_config, key):
        from repro.framework import wire
        from repro.framework.server import QueryStatus
        from repro.framework.verify import AnswerVerifier, Certifier

        graph = dataset.graph.copy()
        store = _build(tmp_path / "store", graph, key)
        root_before = store.auth["root"]
        delta = random_delta(graph, edge_fraction=0.02, seed=5)
        store.apply_delta(delta, graph, key)
        assert store.auth["root"] != root_before

        config = _config(test_config)
        query = dataset.random_queries(1, size=4, diameter=RADII[0],
                                       seed=13)[0]
        engine = Prilo.setup(graph, config, store=store)
        try:
            result = engine.run(query)
            certifier = Certifier(store.auth, seed=config.seed,
                                  config=engine.config,
                                  graph_digest=store.manifest_graph_digest)
            cert = certifier.certify(qid=1, shard_id=0, members=[0],
                                     prev_members=None, result=result)
            verifier = AnswerVerifier.from_store(store, seed=config.seed,
                                                 config=engine.config)
        finally:
            engine.close()
        answer = wire.canonical_answer_of_result(result)
        verdict = {"t": "verdict", "qid": 1, "shard": 0,
                   "status": QueryStatus.OK, "cert": cert,
                   "candidates": answer["candidates"],
                   "pm_positive": answer["pm_positive"],
                   "verified": answer["verified"],
                   "matches": answer["matches"]}
        assert verifier.verify_verdict(
            qid=1, shard_id=0, members=[0], prev_members=None,
            query=query, verdict=verdict) >= 0

    def test_emptied_catalog_and_absence_proofs(self, tmp_path, dataset,
                                                key):
        """Deleting every carrier of a label empties its candidate rows,
        and the removed balls get verifiable absence proofs under the
        updated root."""
        graph = dataset.graph.copy()
        store = _build(tmp_path / "store", graph, key)
        label = min(graph.alphabet,
                    key=lambda lab: (graph.label_frequency(lab),
                                     repr(lab)))
        victims = sorted(graph.vertices_with_label(label), key=repr)
        ids = store.ball_id_map(graph)
        removed_ids = sorted(ids[(v, RADII[0])] for v in victims)
        delta = GraphDelta(removed_vertices=tuple(victims))
        report = store.apply_delta(delta, graph, key)
        assert sorted(report.removed_ball_ids) == removed_ids

        assert label not in graph.alphabet
        catalog = store.auth["catalog"][str(RADII[0])]
        assert repr(label) not in catalog
        for rows in catalog.values():
            assert not set(rows) & set(removed_ids)
        # No candidates for the dead label through the store-backed index.
        index = store.ball_index(graph)
        assert list(index.candidate_balls(label, RADII[0])) == []
        # The updated accumulator proves the removed balls absent.
        tree = MerkleTree.from_leaf_hexes(store.auth["leaves"])
        assert tree.root_hex == store.auth["root"]
        for ball_id in removed_ids:
            assert ball_id not in tree
            proof = tree.prove_absent(ball_id)
            assert verify_absent(tree.root_hex, proof) == ball_id


# ---------------------------------------------------------------------------
# standing queries through QueryBatchEngine.apply_delta
# ---------------------------------------------------------------------------
class TestStandingQueries:
    @pytest.fixture()
    def served(self, dataset, test_config):
        graph = dataset.graph.copy()
        engine = Prilo(graph, _config(test_config))
        server = QueryBatchEngine(engine, cache=CMMCache())
        query = dataset.random_queries(1, size=4, diameter=RADII[0],
                                       seed=13)[0]
        yield server, query
        engine.close()

    def test_registration_is_not_a_notification(self, served):
        server, query = served
        standing = server.register_standing(query, name="watch")
        assert standing.notifications == 0
        assert standing.evaluations == 0
        assert server.standing == (standing,)

    def test_empty_delta_does_not_notify(self, served):
        server, query = served
        standing = server.register_standing(query)
        application = server.apply_delta(GraphDelta())
        assert application.notified == 0
        assert [n.changed for n in application.notices] == [False]
        assert standing.evaluations == 1
        assert standing.notifications == 0

    def test_isolated_vertex_does_not_notify(self, served):
        """A delta whose affected balls cannot host a match re-evaluates
        the standing query but must not re-notify."""
        server, query = served
        engine = server.engine
        label = next(iter(engine.graph.alphabet))
        standing = server.register_standing(query)
        before = dict(standing.matches)
        application = server.apply_delta(GraphDelta(
            added_vertices=(("dyn-isolated", label),)))
        assert len(application.added_ball_ids) == len(RADII)
        assert application.dirty_ball_ids == ()
        assert application.notified == 0
        assert standing.matches == before
        assert standing.evaluations == 1

    def test_destroying_a_match_notifies(self, served):
        server, query = served
        engine = server.engine
        standing = server.register_standing(query)
        assert standing.matches, "fixture query must match somewhere"
        matched_id = int(next(iter(standing.matches)))
        center = next(ctr for (ctr, radius), ball_id
                      in engine.index.id_map().items()
                      if ball_id == matched_id)
        application = server.apply_delta(GraphDelta(
            removed_vertices=(center,)))
        assert application.notified == 1
        assert standing.notifications == 1
        assert str(matched_id) not in standing.matches
        # The retained state equals a from-scratch evaluation.
        fresh = Prilo(engine.graph.copy(), engine.config)
        try:
            answer = canonical_answer_of_result(fresh.run(query))
        finally:
            fresh.close()
        assert sorted(m for ms in standing.matches.values()
                      for m in ms) == \
            sorted(m for ms in answer["matches"].values() for m in ms)

    def test_cache_invalidation_on_delta(self, served):
        server, query = served
        server.serve([query, query])  # warm the CMM cache
        assert len(server.cache) > 0
        entries_before = len(server.cache)
        evictions_before = server.cache.stats.evictions
        delta = random_delta(server.engine.graph, edge_fraction=0.05,
                             seed=9)
        application = server.apply_delta(delta)
        assert application.cache_invalidated > 0
        assert len(server.cache) < entries_before
        assert server.cache.stats.evictions > evictions_before

    def test_store_backed_apply_delta(self, tmp_path, dataset,
                                      test_config, key):
        graph = dataset.graph.copy()
        store = _build(tmp_path / "store", graph, key)
        engine = Prilo(graph, _config(test_config), store=store)
        server = QueryBatchEngine(engine, cache=CMMCache())
        query = dataset.random_queries(1, size=4, diameter=RADII[0],
                                       seed=13)[0]
        try:
            standing = server.register_standing(query)
            delta = random_delta(graph, edge_fraction=0.02, seed=5)
            application = server.apply_delta(delta)
            assert application.store_report is not None
            assert application.store_report.reused >= 0
            store.check(graph=engine.graph, key=key)
            # The engine serves correctly from the updated store.
            report = server.serve([query])
            flat = sorted(m for ms in canonical_answer_of_result(
                report.results[0])["matches"].values() for m in ms)
            assert flat == sorted(m for ms in standing.matches.values()
                                  for m in ms)
        finally:
            engine.close()
