"""Tests for M_Qe encoding (Sec. 3.2) and the canonical label codec."""

import pytest

from repro.core.encoding import (
    LabelCodec,
    encode_query_matrix,
    encrypt_query_matrix,
    materialize_query_matrix,
)


class TestQueryMatrixEncoding:
    def test_example5_rows(self, fig3):
        """M_Qe of Example 5: q at edge positions, 1 elsewhere."""
        query, _ = fig3
        m = materialize_query_matrix(query, 97)
        # M_Qe(u1) = (1,1,1,1,1)
        assert list(m[0]) == [1, 1, 1, 1, 1]
        # M_Qe(u2) = M_Qe(u3) = (q,1,1,1,1)
        assert list(m[1]) == [97, 1, 1, 1, 1]
        assert list(m[2]) == [97, 1, 1, 1, 1]
        # M_Qe(u4) = M_Qe(u5) = (1,q,1,1,1)
        assert list(m[3]) == [1, 97, 1, 1, 1]
        assert list(m[4]) == [1, 97, 1, 1, 1]

    def test_sentinel_encoding(self, fig3):
        query, _ = fig3
        raw = encode_query_matrix(query)
        assert raw[1, 0] == -1
        assert raw[0, 0] == 1

    def test_encrypted_matrix_decrypts_consistently(self, fig3, cgbe):
        query, _ = fig3
        enc = encrypt_query_matrix(cgbe, query)
        q = cgbe.params.q
        for i in range(query.size):
            for j in range(query.size):
                d = cgbe.decrypt(enc[i][j])
                has_edge = query.pattern.has_edge(query.vertex_order[i],
                                                  query.vertex_order[j])
                assert (d % q == 0) == has_edge

    def test_ciphertexts_are_randomized(self, fig3, cgbe):
        """CPA property surrogate: equal plaintexts get distinct blinds."""
        query, _ = fig3
        enc = encrypt_query_matrix(cgbe, query)
        values = [enc[i][j].value for i in range(query.size)
                  for j in range(query.size)]
        assert len(set(values)) == len(values)


class TestLabelCodec:
    def test_codes_sorted_from_one(self):
        codec = LabelCodec.from_alphabet({"C", "A", "B"})
        assert codec.code("A") == 1
        assert codec.code("B") == 2
        assert codec.code("C") == 3
        assert len(codec) == 3

    def test_default_base_collision_free(self):
        codec = LabelCodec.from_alphabet({"A", "B", "C", "D"})
        assert codec.base == 5
        seqs = [("A",), ("B",), ("D", "A"), ("A", "D")]
        encodings = [codec.encode_positions(s) for s in seqs]
        assert len(set(encodings)) == len(encodings)

    def test_paper_base_reproduces_fig7(self):
        """Fig. 7: labels A..D coded 1..4, base 4, (A,C,D) -> 77."""
        codec = LabelCodec.from_alphabet({"A", "B", "C", "D"},
                                         paper_base=True)
        assert codec.base == 4
        assert codec.encode_positions(("A", "C", "D")) == 77

    def test_tag_separates_shapes(self):
        codec = LabelCodec.from_alphabet({"A", "B"})
        same_labels = ("A", "B")
        assert (codec.encode_sequence(same_labels, tag=7)
                != codec.encode_sequence(same_labels, tag=8))

    def test_unknown_label_rejected(self):
        codec = LabelCodec.from_alphabet({"A"})
        with pytest.raises(KeyError):
            codec.code("Z")
        assert "Z" not in codec
        assert "A" in codec

    def test_empty_alphabet_rejected(self):
        with pytest.raises(ValueError):
            LabelCodec.from_alphabet([])

    def test_negative_tag_rejected(self):
        codec = LabelCodec.from_alphabet({"A"})
        with pytest.raises(ValueError):
            codec.encode_sequence(("A",), tag=-1)
