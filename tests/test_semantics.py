"""Tests for the plaintext matchers: hom (Def. 1), sub-iso, ssim (Def. 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.ball import extract_ball
from repro.graph.generators import fig3_graph, power_law_graph
from repro.graph.qgen import QGen
from repro.graph.query import Query, Semantics
from repro.semantics.evaluate import ball_contains_match, find_matches
from repro.semantics.hom import find_homomorphisms, has_homomorphism
from repro.semantics.ssim import (
    match_graph,
    maximal_dual_simulation,
    strong_simulation,
)
from repro.semantics.subiso import find_isomorphisms, has_isomorphism


class TestHom:
    def test_example2_match_function(self, fig3):
        query, graph = fig3
        matches = find_homomorphisms(query, graph)
        assert {"u1": "v6", "u2": "v2", "u3": "v5", "u4": "v5",
                "u5": "v3"} in matches

    def test_hom_allows_non_injective(self, fig3):
        query, graph = fig3
        match = find_homomorphisms(query, graph)[0]
        # u3 and u4 both map to v5 in the paper's example.
        assert len(set(match.values())) < query.size or True
        assert any(len(set(m.values())) < query.size
                   for m in find_homomorphisms(query, graph))

    def test_labels_preserved(self, fig3):
        query, graph = fig3
        for match in find_homomorphisms(query, graph):
            for u, v in match.items():
                assert query.label(u) == graph.label(v)

    def test_edges_preserved(self, fig3):
        query, graph = fig3
        for match in find_homomorphisms(query, graph):
            for u, v in query.pattern.edges():
                assert graph.has_edge(match[u], match[v])

    def test_require_vertex(self, fig3):
        query, graph = fig3
        assert find_homomorphisms(query, graph, require_vertex="v6")
        assert not find_homomorphisms(query, graph, require_vertex="v7")

    def test_limit(self, fig3):
        query, graph = fig3
        assert len(find_homomorphisms(query, graph, limit=1)) == 1

    def test_no_match_when_label_missing(self, fig3):
        _, graph = fig3
        q = Query.from_edges({1: "Z", 2: "A"}, [(1, 2)])
        assert not has_homomorphism(q, graph)

    def test_edge_direction_matters(self):
        g = fig3_graph()
        # (u1:B) -> (u2:A) does not exist; only A -> B edges do.
        q = Query.from_edges({1: "B", 2: "A"}, [(1, 2)])
        assert not has_homomorphism(q, g)
        q2 = Query.from_edges({1: "A", 2: "B"}, [(1, 2)])
        assert has_homomorphism(q2, g)


class TestSubIso:
    def test_injective(self, fig3):
        query, graph = fig3
        for match in find_isomorphisms(query, graph):
            assert len(set(match.values())) == query.size

    def test_subiso_subset_of_hom(self, fig3):
        query, graph = fig3
        hom = find_homomorphisms(query, graph)
        iso = find_isomorphisms(query, graph)
        for match in iso:
            assert match in hom

    def test_fig3_has_no_injective_match(self, fig3):
        """G has only one C reachable appropriately for both u3 and u4?
        Check consistency with the hom matcher instead of assuming."""
        query, graph = fig3
        iso = find_isomorphisms(query, graph)
        # Both u3, u4 need distinct C-predecessors; v5 is the only C with
        # the right edges, so no injective match exists.
        assert iso == []

    def test_triangle_subiso(self):
        g = fig3_graph()
        q = Query.from_edges({1: "A", 2: "B"}, [(1, 2)])
        assert has_isomorphism(q, g)


class TestSsim:
    def test_dual_simulation_fixpoint_closed(self, fig3):
        query, graph = fig3
        sim = maximal_dual_simulation(query, graph)
        for u in query.vertex_order:
            for v in sim[u]:
                for u_child in query.pattern.successors(u):
                    assert graph.successors(v) & sim[u_child]
                for u_parent in query.pattern.predecessors(u):
                    assert graph.predecessors(v) & sim[u_parent]

    def test_fig3_ball_strongly_simulates(self, fig3):
        query, graph = fig3
        ball = extract_ball(graph, "v6", query.diameter)
        sim = strong_simulation(query, ball)
        assert sim is not None
        assert "v6" in sim["u1"]

    def test_center_condition(self, fig3):
        """A ball whose center is simulated by no query vertex fails."""
        query, graph = fig3
        ball = extract_ball(graph, "v7", query.diameter)
        assert strong_simulation(query, ball) is None

    def test_match_graph_is_induced_subgraph(self, fig3):
        query, graph = fig3
        ball = extract_ball(graph, "v6", query.diameter)
        mg = match_graph(query, ball)
        assert mg is not None
        for u, v in mg.edges():
            assert ball.graph.has_edge(u, v)

    def test_hom_implies_ssim(self):
        """Any graph with a hom match containing the center strongly
        simulates... is false in general, but a query matched by an
        isomorphic copy is always strongly simulated."""
        g = power_law_graph(100, 2, 6, seed=5)
        qgen = QGen(g, seed=2)
        query = qgen.generate(4, 2, Semantics.SSIM)
        # QGen queries are induced subgraphs: somewhere G simulates them.
        found = False
        for v in query.pattern.vertices():
            ball = extract_ball(g, v, query.diameter)
            if strong_simulation(query, ball):
                found = True
                break
        assert found


class TestEvaluate:
    def test_dispatch_matches_direct_calls(self, fig3):
        query, graph = fig3
        ball = extract_ball(graph, "v6", query.diameter)
        assert ball_contains_match(query, ball)

    def test_find_matches_hom_images_deduplicated(self, fig3):
        query, graph = fig3
        ball = extract_ball(graph, "v6", query.diameter)
        matches = find_matches(query, ball)
        images = [frozenset(m.vertices()) for m in matches]
        assert len(images) == len(set(images))
        assert frozenset({"v2", "v3", "v5", "v6"}) in images

    def test_find_matches_ssim_single_graph(self, fig3):
        query, graph = fig3
        q = Query(pattern=query.pattern, semantics=Semantics.SSIM,
                  vertex_order=query.vertex_order)
        ball = extract_ball(graph, "v6", q.diameter)
        matches = find_matches(q, ball)
        assert len(matches) == 1

    def test_unknown_semantics_rejected(self, fig3):
        query, graph = fig3
        ball = extract_ball(graph, "v6", 1)
        bad = object.__new__(Query)
        object.__setattr__(bad, "pattern", query.pattern)
        object.__setattr__(bad, "semantics", "nonsense")
        object.__setattr__(bad, "vertex_order", query.vertex_order)
        object.__setattr__(bad, "diameter", query.diameter)
        with pytest.raises(ValueError):
            ball_contains_match(bad, ball)


class TestSemanticProperties:
    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=25, deadline=None)
    def test_qgen_queries_always_satisfiable(self, seed):
        """Property: induced-subgraph queries have a hom match in G."""
        g = power_law_graph(60, 2, 5, seed=seed % 13)
        query = QGen(g, seed=seed).generate(4, 3)
        assert has_homomorphism(query, g)

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=25, deadline=None)
    def test_subiso_implies_hom(self, seed):
        g = power_law_graph(60, 2, 5, seed=seed % 7)
        query = QGen(g, seed=seed).generate(4, 3)
        if has_isomorphism(query, g):
            assert has_homomorphism(query, g)
