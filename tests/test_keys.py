"""Tests for key material containers."""

import pytest

from repro.crypto.keys import DataOwnerKey, UserKeyring


class TestDataOwnerKey:
    def test_generate_and_cipher(self):
        key = DataOwnerKey.generate(seed=1)
        cipher = key.cipher()
        assert cipher.decrypt(cipher.encrypt(b"ball")) == b"ball"

    def test_deterministic_with_seed(self):
        assert DataOwnerKey.generate(2).ball_key == DataOwnerKey.generate(2).ball_key


class TestUserKeyring:
    def test_generate(self):
        ring = UserKeyring.generate(modulus_bits=256, seed=1)
        assert ring.cgbe.params.modulus_bits == 256
        assert ring.owner_key is None

    def test_ball_cipher_requires_grant(self):
        ring = UserKeyring.generate(modulus_bits=256, seed=2)
        with pytest.raises(PermissionError):
            ring.ball_cipher()
        ring.grant_owner_key(DataOwnerKey.generate(seed=3))
        assert ring.ball_cipher() is not None

    def test_enclave_cipher(self):
        ring = UserKeyring.generate(modulus_bits=256, seed=4)
        cipher = ring.enclave_cipher()
        assert cipher.decrypt(cipher.encrypt(b"enc")) == b"enc"
