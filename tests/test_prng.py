"""Tests for deterministic randomness helpers."""

from repro.crypto.prng import derive_seed, random_bits, seeded_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed("a", 1) == derive_seed("a", 1)

    def test_part_sensitivity(self):
        assert derive_seed("a", 1) != derive_seed("a", 2)
        assert derive_seed("ab") != derive_seed("a", "b")

    def test_64_bit_range(self):
        assert 0 <= derive_seed("x") < (1 << 64)


class TestSeededRng:
    def test_streams_reproducible(self):
        a = seeded_rng("component", 7)
        b = seeded_rng("component", 7)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_decorrelated(self):
        a = seeded_rng("x", 7)
        b = seeded_rng("y", 7)
        assert [a.random() for _ in range(3)] != [b.random() for _ in range(3)]


class TestRandomBits:
    def test_exact_bit_length(self):
        rng = seeded_rng("bits")
        for bits in (1, 2, 16, 32, 100):
            assert random_bits(rng, bits).bit_length() == bits

    def test_rejects_non_positive(self):
        import pytest

        with pytest.raises(ValueError):
            random_bits(seeded_rng("z"), 0)
