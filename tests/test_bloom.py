"""Tests for the bloom filter and the Eq. 1 sizing formulas."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filters.bloom import BloomFilter, optimal_num_hashes, required_bits


class TestSizing:
    def test_paper_default_setting(self):
        """Sec. 6.1: n = 10K, p = 0.3 -> m = 25K bits (filter < 4KB)."""
        m = required_bits(10_000, 0.3)
        assert 24_000 <= m <= 26_000
        filt = BloomFilter(m, optimal_num_hashes(m, 10_000))
        assert filt.size_bytes() < 4 * 1024

    def test_required_bits_monotone_in_items(self):
        assert required_bits(2000, 0.1) > required_bits(1000, 0.1)

    def test_required_bits_monotone_in_rate(self):
        assert required_bits(1000, 0.01) > required_bits(1000, 0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            required_bits(0, 0.1)
        with pytest.raises(ValueError):
            required_bits(10, 1.5)
        with pytest.raises(ValueError):
            optimal_num_hashes(0, 5)


class TestMembership:
    def test_no_false_negatives(self):
        filt = BloomFilter.for_capacity(500, 0.05)
        items = list(range(0, 5000, 10))
        filt.update(items)
        assert all(item in filt for item in items)

    def test_false_positive_rate_near_target(self):
        filt = BloomFilter.for_capacity(1000, 0.1)
        filt.update(range(1000))
        probes = range(10_000, 30_000)
        fp = sum(1 for item in probes if item in filt) / len(probes)
        assert fp < 0.2  # target 0.1 with slack

    def test_empty_filter_rejects_everything(self):
        filt = BloomFilter(128, 3)
        assert 42 not in filt
        assert filt.expected_false_positive_rate() == 0.0

    def test_negative_item_rejected(self):
        filt = BloomFilter(128, 3)
        with pytest.raises(ValueError):
            filt.add(-1)

    def test_zero_is_insertable(self):
        """The BF pruning pad encoding is 0 and must round-trip."""
        filt = BloomFilter(128, 3)
        filt.add(0)
        assert 0 in filt


class TestSerialization:
    def test_roundtrip(self):
        filt = BloomFilter(1024, 4)
        filt.update([3, 1, 4, 1, 5, 9, 2, 6])
        restored = BloomFilter.from_bytes(filt.to_bytes())
        assert restored.num_bits == 1024
        assert restored.num_hashes == 4
        assert restored.count == 8
        for item in (3, 1, 4, 5, 9, 2, 6):
            assert item in restored

    def test_truncated_blob_rejected(self):
        with pytest.raises(ValueError):
            BloomFilter.from_bytes(b"xx")

    def test_length_mismatch_rejected(self):
        blob = BloomFilter(64, 2).to_bytes()
        with pytest.raises(ValueError):
            BloomFilter.from_bytes(blob + b"extra")


class TestProperties:
    @given(st.sets(st.integers(min_value=0, max_value=10 ** 9),
                   max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_inserted_items_always_member(self, items):
        filt = BloomFilter(4096, 5)
        filt.update(items)
        assert all(item in filt for item in items)

    @given(st.sets(st.integers(min_value=0, max_value=10 ** 6),
                   min_size=1, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_serialization_preserves_membership(self, items):
        filt = BloomFilter(2048, 4)
        filt.update(items)
        restored = BloomFilter.from_bytes(filt.to_bytes())
        probes = list(items) + [max(items) + i for i in range(1, 50)]
        for probe in probes:
            assert (probe in filt) == (probe in restored)
