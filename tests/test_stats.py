"""Tests for the footnote-8 boxplot summaries."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.stats import boxplot_summary


class TestBoxplotSummary:
    def test_simple_sample(self):
        summary = boxplot_summary([1, 2, 3, 4, 5])
        assert summary.median == 3
        assert summary.q1 == 2
        assert summary.q3 == 4
        assert summary.whisker_low == 1
        assert summary.whisker_high == 5
        assert summary.outliers == ()

    def test_outlier_detected(self):
        summary = boxplot_summary([1, 2, 3, 4, 5, 100])
        assert 100 in summary.outliers
        assert summary.whisker_high < 100

    def test_single_value(self):
        summary = boxplot_summary([7.0])
        assert summary.median == 7.0
        assert summary.iqr == 0.0
        assert summary.outliers == ()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            boxplot_summary([])

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_invariants(self, values):
        summary = boxplot_summary(values)
        assert summary.count == len(values)
        assert summary.q1 <= summary.median <= summary.q3
        # Whiskers are actual data points (interpolated quartiles may sit
        # slightly outside them for tiny samples).
        assert summary.whisker_low <= summary.whisker_high
        ordered = sorted(values)
        assert summary.whisker_low >= ordered[0] - 1e-9
        assert summary.whisker_high <= ordered[-1] + 1e-9
        # Outliers + inside points = all points.
        inside = [v for v in ordered
                  if summary.whisker_low <= v <= summary.whisker_high]
        assert len(inside) + len(summary.outliers) == len(values)
