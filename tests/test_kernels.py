"""Differential and property tests for the batched crypto kernels.

Every kernel must be *value-identical* to the naive path it replaces:
same ciphertext values, same ``power`` / ``value_bits`` bookkeeping, same
overflow behavior, same final answers.  These tests pin that contract --
per kernel against its reference fold, and end to end across all three
semantics with pruning on and off.
"""

from dataclasses import replace
from functools import reduce

import pytest

from repro.core.aggregation import ChunkPlan, chunked_product
from repro.core.encoding import encrypt_query_matrix
from repro.core.enumeration import enumerate_cmms
from repro.core.verification import (
    verification_multiexp,
    verification_plan,
    verify_ciphertext,
)
from repro.crypto import ops as crypto_ops
from repro.crypto.cgbe import CGBE, CGBECiphertext, OverflowError_
from repro.crypto.kernels import (
    DEFAULT_KERNELS,
    NAIVE_KERNELS,
    KernelConfig,
    MaskedProductTable,
    MontgomeryContext,
    MultiExpRegistry,
    iter_bits,
    kernel_scope,
    mask_of_pattern,
    montgomery_context,
    offdiagonal_bases,
    pack_row,
    pack_rows,
)
from repro.framework.prilo import Prilo
from repro.framework.prilo_star import PriloStar
from repro.graph.matrix import ProjectionCache
from repro.graph.query import Semantics
from repro.semantics.ssim import (
    maximal_dual_simulation,
    reference_dual_simulation,
)


class TestKernelConfig:
    def test_defaults_and_naive(self):
        assert DEFAULT_KERNELS.multiexp and not DEFAULT_KERNELS.montgomery
        assert NAIVE_KERNELS == KernelConfig.naive()
        assert not NAIVE_KERNELS.multiexp

    def test_labels(self):
        assert DEFAULT_KERNELS.label == "batched"
        assert NAIVE_KERNELS.label == "naive"
        assert KernelConfig(montgomery=True).label == "batched+mont"

    def test_window_bounds(self):
        with pytest.raises(ValueError, match="window"):
            KernelConfig(window=0)
        with pytest.raises(ValueError, match="window"):
            KernelConfig(window=9)

    def test_dict_round_trip(self):
        config = KernelConfig(multiexp=False, montgomery=True, window=3)
        assert KernelConfig.from_dict(config.as_dict()) == config


class TestMontgomery:
    MODULUS = 0xF123_4567_89AB_CDEF_F123_4567_89AB_CDE1  # odd

    def test_round_trip(self):
        ctx = MontgomeryContext(self.MODULUS)
        for a in (0, 1, 2, self.MODULUS - 1, 0xDEADBEEF):
            assert ctx.from_mont(ctx.to_mont(a)) == a % self.MODULUS

    def test_mul_matches_plain(self):
        ctx = MontgomeryContext(self.MODULUS)
        a, b = 0x1234_5678_9ABC, self.MODULUS - 12345
        got = ctx.from_mont(ctx.mul(ctx.to_mont(a), ctx.to_mont(b)))
        assert got == (a * b) % self.MODULUS

    def test_fold_matches_reduce(self):
        ctx = MontgomeryContext(self.MODULUS)
        values = [3, 5, 7, 0xFFFF_FFFF, self.MODULUS - 2, 11]
        expected = reduce(lambda x, y: (x * y) % self.MODULUS, values, 1)
        assert ctx.fold(values) == expected

    def test_fold_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            MontgomeryContext(self.MODULUS).fold([])

    def test_even_or_tiny_modulus_rejected(self):
        with pytest.raises(ValueError, match="odd"):
            MontgomeryContext(10)
        with pytest.raises(ValueError, match="odd"):
            MontgomeryContext(1)

    def test_context_cache_shares_instances(self):
        assert montgomery_context(self.MODULUS) is \
            montgomery_context(self.MODULUS)

    def test_fold_counts_modmuls(self):
        counter = crypto_ops.OpCounter()
        with crypto_ops.counting(counter, "evaluation", "user") as bucket:
            montgomery_context(self.MODULUS).fold([3, 5, 7])
        # 3 conversions in + 3 chain muls + 1 conversion out.
        assert bucket.modmul == 7


def _kernel_variants():
    return [
        KernelConfig(window=1),
        KernelConfig(window=3),
        KernelConfig(window=4),
        KernelConfig(window=4, montgomery=True),
        KernelConfig(window=6, montgomery=True),
    ]


class TestMaskedProductTable:
    """Differential: table results == chunked_product on the same mask."""

    @pytest.fixture(scope="class")
    def setup(self, fig3, fig3_ball, cgbe):
        query, _ = fig3
        enc = encrypt_query_matrix(cgbe, query)
        plan = verification_plan(cgbe.params, query)
        c_one = cgbe.encrypt_one()
        cmms = enumerate_cmms(query, fig3_ball).cmms
        return query, enc, plan, c_one, cmms

    @pytest.mark.parametrize("config", _kernel_variants(),
                             ids=lambda c: f"w{c.window}-{c.label}")
    def test_matches_naive_verification(self, setup, fig3_ball, cgbe,
                                        config):
        query, enc, plan, c_one, cmms = setup
        table = verification_multiexp(cgbe.params, enc, c_one, plan, config)
        cache = ProjectionCache(fig3_ball.graph)
        for cmm in cmms:
            naive = verify_ciphertext(cgbe.params, enc, c_one, fig3_ball,
                                      cmm, plan)
            mask = cache.project_mask(cmm.assignment)
            batched = table.chunk_ciphertexts(mask)
            assert [c.value for c in batched] == [c.value for c in naive]
            assert [c.power for c in batched] == [c.power for c in naive]
            assert [c.value_bits for c in batched] == \
                [c.value_bits for c in naive]

    def test_project_mask_equals_mask_of_pattern(self, setup, fig3_ball):
        query, _enc, _plan, _c_one, cmms = setup
        cache = ProjectionCache(fig3_ball.graph)
        for cmm in cmms:
            pattern = cmm.project_rows(cache)
            assert cache.project_mask(cmm.assignment) == \
                mask_of_pattern(pattern)

    def test_memo_hits_on_repeated_masks(self, setup, cgbe):
        _query, enc, plan, c_one, _cmms = setup
        table = verification_multiexp(cgbe.params, enc, c_one, plan)
        mask = (1 << 5) | (1 << 11)
        first = table.chunk_ciphertexts(mask)
        misses = table.misses
        counter = crypto_ops.OpCounter()
        with crypto_ops.counting(counter, "evaluation", "user") as bucket:
            second = table.chunk_ciphertexts(mask)
        assert [c.value for c in first] == [c.value for c in second]
        assert table.hits >= 1 and table.misses == misses
        assert bucket.modmul == 0  # memo lookup, no arithmetic

    def test_table_build_is_modmul_subset(self, setup, cgbe):
        _query, enc, plan, c_one, cmms = setup
        table = verification_multiexp(cgbe.params, enc, c_one, plan)
        counter = crypto_ops.OpCounter()
        with crypto_ops.counting(counter, "evaluation", "user") as bucket:
            for i in range(len(cmms)):
                table.chunk_ciphertexts(1 << (i % plan.factors))
        assert bucket.table_build <= bucket.modmul
        assert bucket.table_build == table.table_entries

    def test_batched_uses_fewer_modmuls_than_naive(self, setup, fig3_ball,
                                                   cgbe):
        query, enc, plan, c_one, cmms = setup
        naive_counter = crypto_ops.OpCounter()
        with crypto_ops.counting(naive_counter, "evaluation", "user"):
            for cmm in cmms:
                verify_ciphertext(cgbe.params, enc, c_one, fig3_ball, cmm,
                                  plan)
        table = verification_multiexp(cgbe.params, enc, c_one, plan)
        cache = ProjectionCache(fig3_ball.graph)
        batched_counter = crypto_ops.OpCounter()
        with crypto_ops.counting(batched_counter, "evaluation", "user"):
            for cmm in cmms:
                table.chunk_ciphertexts(cache.project_mask(cmm.assignment))
        naive = naive_counter.totals()
        batched = batched_counter.totals()
        assert 0 < batched.modmul <= naive.modmul

    def test_overflow_matches_naive_message(self, cgbe):
        # A hand-built plan whose chunk does not fit the modulus: both
        # paths must refuse with multiply's exact message.
        params = cgbe.params
        bpf = params.budget.bits_per_factor
        factors = params.modulus_bits // bpf + 1  # crosses the boundary
        plan = ChunkPlan(factors=factors, chunk_factors=factors,
                         chunks_per_item=1, summable=True)
        c_one = cgbe.encrypt_one()
        bases = [cgbe.encrypt_one() for _ in range(factors)]
        table = MaskedProductTable(params, bases, c_one, plan)
        with pytest.raises(OverflowError_, match="split the aggregation"):
            table.chunk_ciphertexts(0)
        with pytest.raises(OverflowError_, match="split the aggregation"):
            chunked_product(params, bases, c_one, plan)

    def test_rejects_non_fresh_bases(self, cgbe):
        params = cgbe.params
        c_one = cgbe.encrypt_one()
        stale = CGBE.multiply(params, c_one, cgbe.encrypt_one())
        plan = ChunkPlan(factors=1, chunk_factors=1, chunks_per_item=1,
                         summable=True)
        with pytest.raises(ValueError, match="fresh single encryptions"):
            MaskedProductTable(params, [stale], c_one, plan)

    def test_rejects_base_count_mismatch(self, cgbe):
        plan = ChunkPlan(factors=4, chunk_factors=4, chunks_per_item=1,
                         summable=True)
        c_one = cgbe.encrypt_one()
        with pytest.raises(ValueError, match="plan lays"):
            MaskedProductTable(cgbe.params, [c_one], c_one, plan)

    def test_registry_builds_once_per_key(self, cgbe, fig3):
        query, _ = fig3
        enc = encrypt_query_matrix(cgbe, query)
        plan = verification_plan(cgbe.params, query)
        c_one = cgbe.encrypt_one()
        registry = MultiExpRegistry()
        builds = []

        def build():
            builds.append(1)
            return verification_multiexp(cgbe.params, enc, c_one, plan)

        first = registry.table(("verify",), build)
        second = registry.table(("verify",), build)
        assert first is second and len(builds) == 1
        assert registry.enabled


class TestKernelScope:
    def test_scope_installs_and_restores(self, cgbe):
        from repro.crypto import cgbe as cgbe_module

        config = KernelConfig(montgomery=True)
        assert cgbe_module._MONT is None
        with kernel_scope(config, cgbe.params):
            assert cgbe_module._MONT is \
                montgomery_context(cgbe.params.modulus)
            with kernel_scope(NAIVE_KERNELS, cgbe.params):
                # naive scope must not clobber an installed context
                assert cgbe_module._MONT is not None
        assert cgbe_module._MONT is None

    def test_product_identical_under_montgomery(self, cgbe):
        params = cgbe.params
        factors = [cgbe.encrypt(3), cgbe.encrypt(5), cgbe.encrypt(7),
                   cgbe.encrypt_one()]
        plain = CGBE.product(params, factors)
        with kernel_scope(KernelConfig(montgomery=True), params):
            mont = CGBE.product(params, factors)
        assert (mont.value, mont.power, mont.value_bits) == \
            (plain.value, plain.power, plain.value_bits)

    def test_product_overflow_identical_under_montgomery(self, cgbe):
        params = cgbe.params
        bpf = params.budget.bits_per_factor
        count = params.modulus_bits // bpf + 1
        factors = [cgbe.encrypt(2) for _ in range(count)]
        with pytest.raises(OverflowError_, match="split the aggregation"):
            CGBE.product(params, factors)
        with kernel_scope(KernelConfig(montgomery=True), params):
            with pytest.raises(OverflowError_,
                               match="split the aggregation"):
                CGBE.product(params, factors)


class TestProductEqualityDedupe:
    """Satellite regression: CGBE.product must collapse repeats of *equal*
    ciphertexts, not just the same object -- e.g. ``c_one`` padding
    re-encrypted after a store quarantine arrives as distinct allocations
    of the same (value, power, bits) triple."""

    def test_distinct_allocations_fold_to_one_modexp(self, cgbe):
        params = cgbe.params
        original = cgbe.encrypt_one()
        copies = [CGBECiphertext(value=original.value, power=original.power,
                                 value_bits=original.value_bits)
                  for _ in range(5)]
        assert len({id(c) for c in copies}) == 5
        counter = crypto_ops.OpCounter()
        with crypto_ops.counting(counter, "evaluation", "user") as bucket:
            folded = CGBE.product(params, copies)
        # One power call for the single equality group, zero multiplies.
        assert bucket.modexp == 1 and bucket.modmul == 0
        sequential = copies[0]
        for c in copies[1:]:
            sequential = CGBE.multiply(params, sequential, c)
        assert folded.value == sequential.value
        assert folded.power == sequential.power == 5


class TestPackedBitsets:
    def test_pack_row_and_iter_bits(self):
        row = [0, 1, 1, 0, 1]
        mask = pack_row(row)
        assert mask == 0b10110
        assert list(iter_bits(mask)) == [1, 2, 4]
        assert list(iter_bits(0)) == []

    def test_pack_rows_matches_pack_row(self):
        rows = [[0, 1, 0], [1, 1, 1], [0, 0, 0]]
        assert pack_rows(rows) == tuple(pack_row(r) for r in rows)

    def test_pack_rows_wide_numpy_path(self):
        # 300-wide rows take the packbits fast path when numpy exists;
        # the result must be identical to the pure-Python packing.
        rows = [[(i * 7 + j) % 3 == 0 for j in range(300)]
                for i in range(4)]
        rows = [[int(v) for v in row] for row in rows]
        assert pack_rows(rows) == tuple(pack_row(r) for r in rows)

    def test_dual_simulation_matches_reference(self, fig3, fig3_ball,
                                               dataset):
        query, graph = fig3
        for g in (graph, fig3_ball.graph):
            assert maximal_dual_simulation(query, g) == \
                reference_dual_simulation(query, g)
        ssim_query = dataset.random_queries(
            1, size=4, diameter=2, semantics=Semantics.SSIM, seed=5)[0]
        g = dataset.graph_for(Semantics.SSIM)
        assert maximal_dual_simulation(ssim_query, g) == \
            reference_dual_simulation(ssim_query, g)


@pytest.mark.parametrize("semantics", [Semantics.HOM, Semantics.SUB_ISO,
                                       Semantics.SSIM])
@pytest.mark.parametrize("engine_cls", [Prilo, PriloStar],
                         ids=["pruning-off", "pruning-on"])
class TestEndToEndKernelEquivalence:
    """The whole pipeline, naive vs batched kernels: identical answers,
    never more modmuls."""

    def test_same_answers_and_fewer_ops(self, dataset, test_config,
                                        engine_cls, semantics):
        graph = dataset.graph_for(semantics)
        query = dataset.random_queries(1, size=4, diameter=2,
                                       semantics=semantics, seed=5)[0]
        naive_cfg = replace(test_config, kernels=NAIVE_KERNELS)
        batched_cfg = replace(test_config, kernels=DEFAULT_KERNELS)
        naive = engine_cls.setup(graph, naive_cfg).run(query)
        batched = engine_cls.setup(graph, batched_cfg).run(query)
        assert batched.match_ball_ids == naive.match_ball_ids
        assert batched.verified_ids == naive.verified_ids
        assert batched.num_matches == naive.num_matches
        naive_ops = naive.metrics.ops.totals()
        batched_ops = batched.metrics.ops.totals()
        assert naive_ops.modmul > 0 and batched_ops.modmul > 0
        assert batched_ops.modmul <= naive_ops.modmul

    def test_ops_bucketed_by_phase_and_role(self, dataset, test_config,
                                            engine_cls, semantics):
        graph = dataset.graph_for(semantics)
        query = dataset.random_queries(1, size=4, diameter=2,
                                       semantics=semantics, seed=5)[0]
        result = engine_cls.setup(graph, test_config).run(query)
        buckets = result.metrics.ops.buckets
        phases = {phase for phase, _role in buckets}
        roles = {role for _phase, role in buckets}
        assert "evaluation" in phases
        assert "user_preprocessing" in phases
        assert any(role.startswith("player:") for role in roles)
        assert "user" in roles
        # round-trips through the JSON shape
        rebuilt = crypto_ops.OpCounter.from_dict(result.metrics.ops.as_dict())
        assert rebuilt.as_dict() == result.metrics.ops.as_dict()


class TestMontgomeryEndToEnd:
    def test_montgomery_run_identical(self, dataset, test_config):
        query = dataset.random_queries(1, size=4, diameter=2, seed=6)[0]
        base = Prilo.setup(dataset.graph, test_config).run(query)
        mont_cfg = replace(test_config,
                           kernels=KernelConfig(montgomery=True))
        mont = Prilo.setup(dataset.graph, mont_cfg).run(query)
        assert mont.match_ball_ids == base.match_ball_ids
        assert mont.num_matches == base.num_matches
