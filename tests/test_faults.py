"""Fault-tolerant query execution (chaos mode).

The contract under test, end to end: under *any* seeded fault schedule --
crashed workers, hung shares, failed attestation, enclave aborts,
corrupted sealed payloads, tampered store packs, dropped Players -- the
engine either recovers or degrades gracefully, and the final match set is
byte-identical to a fault-free serial run.  Every injection decision is a
pure function of ``(seed, kind, key, attempt)``, so the schedules here
replay identically on every platform and backend.

``REPRO_CHAOS_SEED`` (CI's chaos-smoke job sets it) varies the schedule
without touching the assertions: they must hold for *every* seed.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import replace

import pytest

from repro.core.bf_pruning import BFConfig
from repro.framework.executor import ProcessExecutor, SerialExecutor
from repro.framework.faults import (
    INJECTABLE_KINDS,
    ChaosPolicy,
    FaultAction,
    FaultInjector,
    FaultKind,
    FaultRecoveryExhausted,
    FaultReport,
    RecoveryPolicy,
)
from repro.framework.prilo import Prilo, PriloConfig
from repro.framework.prilo_star import PriloStar
from repro.graph.query import Semantics
from repro.tee.channel import AttestationFailure

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "7"))

#: Tests should not spend wall-clock sleeping through realistic backoffs.
FAST_RECOVERY = RecoveryPolicy(backoff_seconds=0.01)


def chaos(rate: float, kinds: tuple[str, ...] = INJECTABLE_KINDS,
          **kwargs) -> ChaosPolicy:
    kwargs.setdefault("seed", CHAOS_SEED)
    kwargs.setdefault("timeout_sleep_seconds", 0.05)
    return ChaosPolicy(fault_rate=rate, kinds=kinds, **kwargs)


@pytest.fixture(scope="module")
def config():
    return PriloConfig(k_players=2, modulus_bits=1024, q_bits=16,
                       r_bits=16, radii=(1, 2, 3), seed=3,
                       bf=BFConfig(eta=16, expected_trees=200),
                       recovery=FAST_RECOVERY)


@pytest.fixture(scope="module")
def query_of(dataset):
    def make(semantics=Semantics.HOM):
        return dataset.random_queries(1, size=4, diameter=2,
                                      semantics=semantics, seed=5)[0]
    return make


def run_engine(graph, query, config, *, pruning, **overrides):
    cls = PriloStar if pruning else Prilo
    with cls.setup(graph, replace(config, **overrides)) as engine:
        return engine.run(query)


# ----------------------------------------------------------------------
# the schedule: deterministic, seeded, order-independent
# ----------------------------------------------------------------------
class TestChaosPolicy:
    def test_decisions_are_deterministic(self):
        a = chaos(0.5)
        b = ChaosPolicy(seed=CHAOS_SEED, fault_rate=0.5,
                        timeout_sleep_seconds=0.05)
        coords = [(k, f"eval:{i}:p{p}", n) for k in INJECTABLE_KINDS
                  for i in range(20) for p in range(2) for n in range(2)]
        assert [a.decides(*c) for c in coords] == \
            [b.decides(*c) for c in coords]

    def test_different_seeds_differ(self):
        coords = [(FaultKind.WORKER_CRASH, f"eval:{i}:p0", 0)
                  for i in range(200)]
        one = [chaos(0.5, seed=1).decides(*c) for c in coords]
        two = [chaos(0.5, seed=2).decides(*c) for c in coords]
        assert one != two

    def test_rate_extremes(self):
        always = chaos(1.0)
        never = chaos(0.0)
        assert always.active and not never.active
        for kind in INJECTABLE_KINDS:
            assert always.decides(kind, "x", 0)
            assert not never.decides(kind, "x", 0)

    def test_rate_is_approximately_honoured(self):
        policy = chaos(0.1)
        hits = sum(policy.decides(FaultKind.WORKER_CRASH, f"k{i}", 0)
                   for i in range(4000))
        assert 0.05 < hits / 4000 < 0.16

    def test_faulted_attempts_bounds_retries(self):
        policy = chaos(1.0, faulted_attempts=2)
        assert policy.decides(FaultKind.WORKER_CRASH, "x", 0)
        assert policy.decides(FaultKind.WORKER_CRASH, "x", 1)
        assert not policy.decides(FaultKind.WORKER_CRASH, "x", 2)

    def test_kinds_filter(self):
        policy = chaos(1.0, kinds=(FaultKind.SHARE_TIMEOUT,))
        assert policy.decides(FaultKind.SHARE_TIMEOUT, "x", 0)
        assert not policy.decides(FaultKind.WORKER_CRASH, "x", 0)

    def test_store_stale_is_not_injectable(self):
        assert FaultKind.STORE_STALE not in INJECTABLE_KINDS
        with pytest.raises(ValueError, match="unknown fault kinds"):
            ChaosPolicy(fault_rate=0.5, kinds=(FaultKind.STORE_STALE,))

    @pytest.mark.parametrize("bad", [
        dict(seed=1.5), dict(seed=True), dict(fault_rate=-0.1),
        dict(fault_rate=1.5), dict(kinds=("meteor_strike",)),
        dict(faulted_attempts=0), dict(timeout_sleep_seconds=0.0),
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            ChaosPolicy(**{"fault_rate": 0.5, **bad})


class TestRecoveryPolicy:
    @pytest.mark.parametrize("bad", [
        dict(max_retries=-1), dict(backoff_seconds=-0.1),
        dict(backoff_factor=0.5), dict(share_timeout=0.0),
        dict(share_timeout=-1.0),
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            RecoveryPolicy(**bad)

    def test_backoff_grows_exponentially(self):
        policy = RecoveryPolicy(backoff_seconds=0.1, backoff_factor=2.0)
        assert policy.backoff_for(0) == pytest.approx(0.1)
        assert policy.backoff_for(1) == pytest.approx(0.2)
        assert policy.backoff_for(3) == pytest.approx(0.8)


class TestConfigValidation:
    def test_chaos_must_be_policy(self):
        with pytest.raises(ValueError, match="ChaosPolicy"):
            PriloConfig(chaos=0.5)

    def test_recovery_must_be_policy(self):
        with pytest.raises(ValueError, match="RecoveryPolicy"):
            PriloConfig(recovery="retry-a-lot")

    @pytest.mark.parametrize("bad", [
        dict(k_players=0), dict(k_players=True), dict(parallelism=0),
        dict(parallelism=2.0), dict(seed="0"), dict(executor="threads"),
    ])
    def test_eager_field_validation(self, bad):
        with pytest.raises(ValueError):
            PriloConfig(**bad)


# ----------------------------------------------------------------------
# executor-level recovery (unit-ish, fast)
# ----------------------------------------------------------------------
def _echo(value):
    """Module-level so the process pool can pickle it by reference."""
    return value * 2


class TestExecutorRecovery:
    def _calls(self, n=4):
        return [(f"eval:{i}:p{i % 2}", _echo, (i,)) for i in range(n)]

    def test_serial_retries_until_success(self):
        executor = SerialExecutor(recovery=FAST_RECOVERY)
        executor.install_faults(FaultInjector(chaos(1.0, kinds=(
            FaultKind.WORKER_CRASH, FaultKind.SHARE_TIMEOUT))))
        assert executor._run_all(self._calls()) == [0, 2, 4, 6]
        report = executor.faults.report
        assert report.injected == 4
        assert report.detected == 4
        assert report.retries == 4
        assert report.recovered == 4

    def test_serial_exhaustion_raises(self):
        executor = SerialExecutor(
            recovery=replace(FAST_RECOVERY, max_retries=1))
        executor.install_faults(FaultInjector(chaos(
            1.0, kinds=(FaultKind.WORKER_CRASH,), faulted_attempts=99)))
        with pytest.raises(FaultRecoveryExhausted, match="eval:0:p0"):
            executor._run_all(self._calls())

    def test_process_survives_worker_crashes(self):
        before = len(multiprocessing.active_children())
        with ProcessExecutor(workers=2, recovery=FAST_RECOVERY) as executor:
            executor.install_faults(FaultInjector(chaos(
                1.0, kinds=(FaultKind.WORKER_CRASH,))))
            assert executor._run_all(self._calls()) == [0, 2, 4, 6]
            assert executor.respawns >= 1
            report = executor.faults.report
            assert report.injected == 4
            assert report.detected >= 4
            assert report.recovered == 4
        assert len(multiprocessing.active_children()) <= before

    def test_process_share_deadline_trips_and_recovers(self):
        recovery = replace(FAST_RECOVERY, share_timeout=0.15)
        with ProcessExecutor(workers=2, recovery=recovery) as executor:
            executor.install_faults(FaultInjector(chaos(
                1.0, kinds=(FaultKind.SHARE_TIMEOUT,),
                timeout_sleep_seconds=5.0)))
            assert executor._run_all(self._calls(2)) == [0, 2]
            report = executor.faults.report
            assert report.count(FaultAction.DETECTED) >= 2
            kinds = {e.kind for e in report.events
                     if e.action == FaultAction.DETECTED}
            assert FaultKind.SHARE_TIMEOUT in kinds

    def test_process_exhaustion_raises(self):
        recovery = replace(FAST_RECOVERY, max_retries=1)
        with ProcessExecutor(workers=2, recovery=recovery) as executor:
            executor.install_faults(FaultInjector(chaos(
                1.0, kinds=(FaultKind.WORKER_CRASH,), faulted_attempts=99)))
            with pytest.raises(FaultRecoveryExhausted):
                executor._run_all(self._calls(2))

    def test_no_leaked_processes_after_close(self):
        executor = ProcessExecutor(workers=2, recovery=FAST_RECOVERY)
        executor.install_faults(FaultInjector(chaos(
            1.0, kinds=(FaultKind.WORKER_CRASH,))))
        executor._run_all(self._calls(2))
        executor.close()
        for child in multiprocessing.active_children():
            child.join(timeout=5)
        assert not multiprocessing.active_children()


# ----------------------------------------------------------------------
# end-to-end equivalence: chaos never changes answers
# ----------------------------------------------------------------------
class TestChaosEquivalence:
    """The tentpole guarantee: at a 10%+ fault rate across every kind,
    the match set equals the fault-free serial run's, for all three
    semantics, pruning on and off, on both backends."""

    @pytest.mark.parametrize("pruning", [False, True],
                             ids=["plain", "bf+twiglet"])
    @pytest.mark.parametrize("semantics", [Semantics.HOM,
                                           Semantics.SUB_ISO,
                                           Semantics.SSIM])
    def test_serial_chaos_matches_fault_free(self, dataset, config, query_of,
                                             semantics, pruning):
        graph = dataset.graph_for(semantics)
        query = query_of(semantics)
        base = run_engine(graph, query, config, pruning=pruning)
        chaotic = run_engine(graph, query, config, pruning=pruning,
                             chaos=chaos(0.3))
        assert chaotic.matches == base.matches
        assert chaotic.candidate_ids == base.candidate_ids
        assert chaotic.metrics.faults.injected > 0

    @pytest.mark.parametrize("pruning", [False, True],
                             ids=["plain", "bf+twiglet"])
    def test_process_chaos_matches_fault_free(self, dataset, config,
                                              query_of, pruning):
        query = query_of()
        base = run_engine(dataset.graph, query, config, pruning=pruning)
        chaotic = run_engine(dataset.graph, query, config, pruning=pruning,
                             chaos=chaos(0.3), executor="process",
                             parallelism=2)
        assert chaotic.matches == base.matches
        assert chaotic.candidate_ids == base.candidate_ids
        assert chaotic.metrics.faults.injected > 0

    def test_fault_summary_surfaces_in_metrics(self, dataset, config,
                                               query_of):
        result = run_engine(dataset.graph, query_of(), config, pruning=True,
                            chaos=chaos(0.3))
        report = result.metrics.faults
        assert report  # truthy when any event was recorded
        line = report.summary_line()
        for token in ("injected=", "detected=", "retries=", "recovered=",
                      "degraded="):
            assert token in line
        as_dict = report.as_dict()
        assert as_dict["injected"] == report.injected
        assert len(as_dict["events"]) == len(report.events)


# ----------------------------------------------------------------------
# degradation paths
# ----------------------------------------------------------------------
class TestBFDegradation:
    def test_attestation_failure_degrades_to_twiglet_only(self, dataset,
                                                          config, query_of):
        query = query_of()
        base = run_engine(dataset.graph, query, config, pruning=True)
        degraded = run_engine(
            dataset.graph, query, config, pruning=True,
            chaos=chaos(1.0, kinds=(FaultKind.ENCLAVE_ATTESTATION,)))
        assert degraded.matches == base.matches
        assert "bf" in base.pm_per_method
        assert "bf" not in degraded.pm_per_method
        assert "twiglet" in degraded.pm_per_method
        report = degraded.metrics.faults
        events = [e for e in report.events
                  if e.kind == FaultKind.ENCLAVE_ATTESTATION]
        assert any(e.action == FaultAction.DEGRADED for e in events)

    def test_degrade_bf_off_raises(self, dataset, config, query_of):
        strict = replace(config,
                         recovery=replace(FAST_RECOVERY, degrade_bf=False),
                         chaos=chaos(1.0,
                                     kinds=(FaultKind.ENCLAVE_ATTESTATION,)))
        with PriloStar.setup(dataset.graph, strict) as engine:
            with pytest.raises(AttestationFailure):
                engine.run(query_of())

    def test_enclave_memory_recovers_on_retry(self, dataset, config,
                                              query_of):
        query = query_of()
        base = run_engine(dataset.graph, query, config, pruning=True)
        result = run_engine(
            dataset.graph, query, config, pruning=True,
            chaos=chaos(1.0, kinds=(FaultKind.ENCLAVE_MEMORY,)))
        # One retry per ECALL recovers every ball: BF verdicts survive.
        assert result.matches == base.matches
        assert result.pm_per_method.get("bf") == base.pm_per_method.get("bf")
        report = result.metrics.faults
        assert report.recovered > 0
        assert all(e.kind == FaultKind.ENCLAVE_MEMORY
                   for e in report.events)

    def test_enclave_memory_exhaustion_degrades_per_ball(self, dataset,
                                                         config, query_of):
        query = query_of()
        base = run_engine(dataset.graph, query, config, pruning=True)
        result = run_engine(
            dataset.graph, query, config, pruning=True,
            chaos=chaos(1.0, kinds=(FaultKind.ENCLAVE_MEMORY,),
                        faulted_attempts=2))
        # Both attempts abort: each ball's BF verdict is skipped (missing
        # verdicts count positive), the answer is unchanged.
        assert result.matches == base.matches
        assert not result.pm_per_method.get("bf")
        assert result.metrics.faults.degraded > 0

    def test_corrupted_sealed_payload_recovers(self, dataset, config,
                                               query_of):
        query = query_of()
        base = run_engine(dataset.graph, query, config, pruning=True)
        result = run_engine(
            dataset.graph, query, config, pruning=True,
            chaos=chaos(1.0, kinds=(FaultKind.CHANNEL_CORRUPTION,)))
        # Attempt 0 is corrupted in flight, the re-request is pristine.
        assert result.matches == base.matches
        assert result.pm_per_method.get("bf") == base.pm_per_method.get("bf")
        report = result.metrics.faults
        assert any(e.kind == FaultKind.CHANNEL_CORRUPTION
                   and e.action == FaultAction.RECOVERED
                   for e in report.events)


class TestDropoutReplan:
    @pytest.mark.parametrize("pruning", [False, True],
                             ids=["prilo-rsg", "prilo*-ssg"])
    def test_dropout_replans_onto_survivors(self, dataset, config, query_of,
                                            pruning):
        query = query_of()
        three = replace(config, k_players=3)
        base = run_engine(dataset.graph, query, three, pruning=pruning)
        result = run_engine(
            dataset.graph, query, three, pruning=pruning,
            chaos=chaos(1.0, kinds=(FaultKind.PLAYER_DROPOUT,)))
        # rate=1.0 drops every Player; the lowest id is kept alive and
        # inherits every orphaned ball.
        assert result.matches == base.matches
        assert result.verified_ids == base.verified_ids
        survivors = {seq.player for seq in result.sequences}
        assert survivors == {0}
        all_base = {b for seq in base.sequences for b in seq.sequence}
        all_replanned = {b for seq in result.sequences
                        for b in seq.sequence}
        assert all_replanned == all_base
        report = result.metrics.faults
        dropped = [e for e in report.events
                   if e.kind == FaultKind.PLAYER_DROPOUT
                   and e.action == FaultAction.INJECTED]
        assert len(dropped) == 2  # players 1 and 2
        assert any(e.action == FaultAction.DEGRADED for e in report.events
                   if e.kind == FaultKind.PLAYER_DROPOUT)

    def test_replan_disabled_keeps_sequences(self, dataset, config,
                                             query_of):
        query = query_of()
        no_replan = replace(
            config, k_players=3,
            recovery=replace(FAST_RECOVERY, replan_dropouts=False),
            chaos=chaos(1.0, kinds=(FaultKind.PLAYER_DROPOUT,)))
        with Prilo.setup(dataset.graph, no_replan) as engine:
            result = engine.run(query)
        assert {seq.player for seq in result.sequences} == {0, 1, 2}
        assert not result.metrics.faults


# ----------------------------------------------------------------------
# store faults: quarantine, recompute, stale fallback
# ----------------------------------------------------------------------
class TestStoreFaults:
    RADII = (2,)
    SEED = 3

    @pytest.fixture()
    def store(self, tmp_path, dataset):
        from repro.crypto.keys import DataOwnerKey
        from repro.storage import ArtifactStore

        return ArtifactStore.create(
            tmp_path / "store", dataset.graph, self.RADII,
            DataOwnerKey.generate(self.SEED), twiglet_h=3,
            bf_config=BFConfig(eta=16, expected_trees=200))

    def _config(self, config):
        return replace(config, radii=self.RADII, seed=self.SEED)

    def test_tampered_serves_quarantine_and_recompute(self, dataset, config,
                                                      query_of, store):
        query = query_of()
        cfg = self._config(config)
        base = run_engine(dataset.graph, query, cfg, pruning=True)
        with PriloStar.setup(
                dataset.graph,
                replace(cfg, chaos=chaos(
                    1.0, kinds=(FaultKind.STORE_TAMPER,))),
                store=store) as engine:
            result = engine.run(query)
        # Every first serve of every pack key is corrupted; quarantine +
        # recompute/re-encrypt converge on the fault-free answer.
        assert result.matches == base.matches
        assert result.verified_ids == base.verified_ids
        assert store.quarantined
        report = result.metrics.faults
        assert any(e.kind == FaultKind.STORE_TAMPER
                   and e.action == FaultAction.DEGRADED
                   for e in report.events)

    def test_quarantine_disabled_raises(self, dataset, config, query_of,
                                        store):
        cfg = replace(
            self._config(config),
            recovery=replace(FAST_RECOVERY, quarantine_store=False),
            chaos=chaos(1.0, kinds=(FaultKind.STORE_TAMPER,)))
        with PriloStar.setup(dataset.graph, cfg, store=store) as engine:
            with pytest.raises(Exception):
                engine.run(query_of())

    def test_stale_store_recompute_fallback(self, dataset, config, query_of,
                                            store):
        from repro.storage import StoreError

        query = query_of()
        # config radii (1, 2, 3) != store radii (2,): stale at setup.
        stale_cfg = replace(config, seed=self.SEED)
        with pytest.raises(StoreError):
            PriloStar.setup(dataset.graph, stale_cfg, store=store)
        permissive = replace(
            stale_cfg,
            recovery=replace(FAST_RECOVERY, recompute_on_stale_store=True))
        base = run_engine(dataset.graph, query, permissive, pruning=True)
        with PriloStar.setup(dataset.graph, permissive,
                             store=store) as engine:
            assert engine.store is None  # degraded to in-process rebuild
            result = engine.run(query)
        assert result.matches == base.matches
        events = result.metrics.faults.events
        assert any(e.kind == FaultKind.STORE_STALE
                   and e.action == FaultAction.DEGRADED for e in events)

    def test_user_side_tamper_detection_refetches(self, dataset, config,
                                                  query_of, store):
        """A blob corrupted on its way to the user fails the MAC; the
        Dealer re-serves from the authoritative plaintext pack."""
        query = query_of()
        cfg = self._config(config)
        base = run_engine(dataset.graph, query, cfg, pruning=True)
        with PriloStar.setup(
                dataset.graph,
                replace(cfg, chaos=chaos(
                    1.0, kinds=(FaultKind.STORE_TAMPER,))),
                store=store) as engine:
            result = engine.run(query)
        report = result.metrics.faults
        refetches = [e for e in report.events
                     if e.key.startswith("retrieve:b")
                     and e.action == FaultAction.RECOVERED]
        if base.verified_ids:
            assert refetches
        assert result.matches == base.matches


class TestFaultReportShape:
    def test_empty_report_is_falsy(self):
        report = FaultReport()
        assert not report
        assert report.summary_line() == ("injected=0 detected=0 retries=0 "
                                         "recovered=0 degraded=0")

    def test_counters_track_events(self):
        report = FaultReport()
        report.record(FaultKind.WORKER_CRASH, "k", FaultAction.INJECTED)
        report.record(FaultKind.WORKER_CRASH, "k", FaultAction.DETECTED)
        report.record(FaultKind.WORKER_CRASH, "k", FaultAction.RETRIED)
        report.record(FaultKind.WORKER_CRASH, "k", FaultAction.RECOVERED)
        assert (report.injected, report.detected, report.retries,
                report.recovered, report.degraded) == (1, 1, 1, 1, 0)
        assert report.by_kind() == {FaultKind.WORKER_CRASH: 4}
