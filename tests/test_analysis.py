"""Tests for the privacy-analysis package (bounds, adversaries, traces)."""

import random

import pytest

from repro.analysis.adversary import (
    CGBEDistinguisher,
    SequenceAdversary,
    cpa_game,
    sequence_balanced_accuracy,
    sequence_guessing_game,
)
from repro.analysis.bounds import (
    cgbe_false_violation_rate,
    expected_false_violations,
    ssg_guess_probability,
    twiglet_attack_probability,
)
from repro.analysis.traces import (
    enumeration_trace,
    traces_identical,
    verification_trace,
)
from repro.graph.ball import extract_ball
from repro.graph.generators import fig3_graph, fig3_query, social_graph
from repro.graph.query import Query


class TestBounds:
    def test_twiglet_attack_probability(self):
        assert twiglet_attack_probability(0) == 1.0
        assert twiglet_attack_probability(1) == 0.5
        assert twiglet_attack_probability(10) == pytest.approx(2 ** -10)
        with pytest.raises(ValueError):
            twiglet_attack_probability(-1)

    def test_ssg_guess_probability_is_half(self):
        assert ssg_guess_probability(0, 10, 3) == 0.5
        assert ssg_guess_probability(9, 10, None) == 0.5
        with pytest.raises(ValueError):
            ssg_guess_probability(10, 10, 3)
        with pytest.raises(ValueError):
            ssg_guess_probability(0, 10, 11)

    def test_false_violation_rates(self):
        assert cgbe_false_violation_rate(2 ** 32) == pytest.approx(2 ** -32)
        assert expected_false_violations(2 ** 16, 65536) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            cgbe_false_violation_rate(1)


class TestSequenceGame:
    def test_within_front_game_is_fair(self):
        """The paper's Eq. 3 claim, verbatim: among the balls before the
        SCP, positives and negatives are equinumerous and randomly
        permuted, so the best positional rule within the front scores
        1/2."""
        from repro.analysis.adversary import within_front_accuracy

        accuracy = within_front_accuracy(num_balls=60, theta=0.15, k=4,
                                         rounds=80, seed=3)
        assert abs(accuracy - 0.5) < 0.06

    def test_positional_prior_enrichment_is_real(self):
        """Reproduction finding (documented in EXPERIMENTS.md): the
        positional *prior* is not flat -- a front-guesser's balanced
        accuracy sits well above 1/2 because the front is ~50% positive
        while the tail holds only dummy positives.  The paper's App. B.4
        computes exactly this distinct tail prior (Eq. 4); its 1/2 bound
        concerns identifying which front ball is positive, not whether a
        position is enriched."""
        accuracy = sequence_balanced_accuracy(
            SequenceAdversary.front_guesser(0.25), num_balls=60,
            theta=0.15, k=4, rounds=60, seed=3)
        assert accuracy > 0.55

    def test_coin_flipper_baseline(self):
        accuracy = sequence_balanced_accuracy(
            SequenceAdversary.coin_flipper(seed=1), num_balls=40,
            theta=0.2, k=4, rounds=40, seed=5)
        assert abs(accuracy - 0.5) < 0.08

    def test_leaky_generator_would_be_caught(self):
        """Sanity check of the *game itself*: against a broken generator
        that sorts positives strictly first without dummies, the front
        guesser wins decisively."""
        from repro.core.retrieval import PlayerSequence

        rng = random.Random(9)
        ids = list(range(40))
        total = 0.0
        rounds = 30
        adversary = SequenceAdversary.front_guesser(0.15)
        for _ in range(rounds):
            positives = set(rng.sample(ids, 6))
            ordering = sorted(ids, key=lambda b: b not in positives)
            seq = PlayerSequence(player=0, sequence=tuple(ordering), scp=6)
            tp = sum(1 for p, b in enumerate(seq.sequence)
                     if adversary.strategy(p, len(seq.sequence))
                     and b in positives)
            fn = len(positives) - tp
            tn = sum(1 for p, b in enumerate(seq.sequence)
                     if not adversary.strategy(p, len(seq.sequence))
                     and b not in positives)
            fp = len(ids) - len(positives) - tn
            total += ((tp / (tp + fn)) + (tn / (tn + fp))) / 2
        assert total / rounds > 0.7  # the leak is detectable

    def test_game_outcomes_structure(self):
        outcomes = sequence_guessing_game(
            [SequenceAdversary.front_guesser(),
             SequenceAdversary.coin_flipper()],
            num_balls=30, rounds=10, seed=1)
        assert len(outcomes) == 2
        assert all(o.trials == 10 for o in outcomes)
        assert all(0 <= o.accuracy <= 1 for o in outcomes)


class TestCpaGame:
    @pytest.mark.parametrize("distinguisher", [
        CGBEDistinguisher.magnitude(),
        CGBEDistinguisher.parity(),
        CGBEDistinguisher.low_bits(),
    ], ids=lambda d: d.name)
    def test_no_simple_distinguisher_beats_chance(self, distinguisher):
        outcome = cpa_game(distinguisher, trials=600, seed=11)
        # 600 Bernoulli(1/2) trials: 4 sigma is ~0.082.
        assert outcome.advantage < 0.09, (
            f"{distinguisher.name} distinguishes E(1) from E(q)")


class TestTraces:
    def make_label_twins(self):
        """Two connected queries over identical labeled vertices."""
        labels = {0: "A", 1: "B", 2: "C", 3: "A"}
        path = Query.from_edges(labels, [(0, 1), (1, 2), (2, 3)],
                                vertex_order=(0, 1, 2, 3))
        star = Query.from_edges(labels, [(1, 0), (1, 2), (1, 3)],
                                vertex_order=(0, 1, 2, 3))
        return path, star

    def test_enumeration_traces_identical_for_label_twins(self):
        path, star = self.make_label_twins()
        graph = social_graph(100, 2, 0.1, 3, seed=4)
        relabeled = {v: ["A", "B", "C"][graph.label(v) % 3]
                     for v in graph.vertices()}
        from repro.graph.labeled_graph import LabeledGraph

        g = LabeledGraph.from_edges(relabeled, graph.edges())
        for center in sorted(g.vertices())[:8]:
            ball = extract_ball(g, center, path.diameter, ball_id=0)
            assert traces_identical(enumeration_trace(path, ball),
                                    enumeration_trace(star, ball))

    def test_verification_traces_identical_for_label_twins(self):
        path, star = self.make_label_twins()
        from repro.graph.labeled_graph import LabeledGraph

        g = LabeledGraph.from_edges(
            {0: "A", 1: "B", 2: "C", 3: "A", 4: "B"},
            [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
        ball = extract_ball(g, 0, path.diameter, ball_id=0)
        assert traces_identical(verification_trace(path, ball),
                                verification_trace(star, ball))

    def test_traces_differ_for_different_labels(self):
        """Negative control: label changes are allowed to change traces."""
        q1 = fig3_query()
        labels = {u: q1.label(u) for u in q1.vertex_order}
        labels["u5"] = "A"  # different label multiset
        q2 = Query.from_edges(labels, list(q1.pattern.edges()),
                              vertex_order=q1.vertex_order)
        ball = extract_ball(fig3_graph(), "v6", q1.diameter, ball_id=0)
        assert not traces_identical(enumeration_trace(q1, ball),
                                    enumeration_trace(q2, ball))

    def test_truncated_trace_marked(self):
        query = fig3_query()
        ball = extract_ball(fig3_graph(), "v6", query.diameter, ball_id=0)
        trace = enumeration_trace(query, ball, limit=3)
        assert ("truncated",) in trace
