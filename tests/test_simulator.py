"""Tests for the deterministic schedule simulator."""

import pytest

from repro.core.retrieval import PlayerSequence, rsg_sequences, ssg_sequences
from repro.framework.simulator import simulate_schedule


def seq(player, ids, scp=None):
    return PlayerSequence(player=player, sequence=tuple(ids), scp=scp)


class TestSimulation:
    def test_serial_accumulation(self):
        out = simulate_schedule([seq(0, [1, 2, 3])],
                                {1: 1.0, 2: 2.0, 3: 4.0}, positives=[3])
        assert out.completion == {1: 1.0, 2: 3.0, 3: 7.0}
        assert out.all_positives == 7.0
        assert out.first_positive == 7.0
        assert out.makespan == 7.0
        assert out.evaluations == 3

    def test_players_run_in_parallel(self):
        out = simulate_schedule([seq(0, [1]), seq(1, [2])],
                                {1: 5.0, 2: 1.0}, positives=[1, 2])
        assert out.makespan == 5.0
        assert out.first_positive == 1.0
        assert out.all_positives == 5.0
        assert out.player_busy == [5.0, 1.0]

    def test_duplicate_ball_takes_earlier_completion(self):
        """SSG dummies: the Dealer has the result at the earlier finish."""
        out = simulate_schedule(
            [seq(0, [7, 1]), seq(1, [2, 7])],
            {7: 1.0, 1: 1.0, 2: 10.0}, positives=[7])
        assert out.completion[7] == 1.0
        assert out.all_positives == 1.0

    def test_missing_cost_raises(self):
        with pytest.raises(KeyError):
            simulate_schedule([seq(0, [1])], {}, positives=[])

    def test_unscheduled_positive_raises(self):
        with pytest.raises(ValueError, match="never scheduled"):
            simulate_schedule([seq(0, [1])], {1: 1.0}, positives=[9])

    def test_no_positives(self):
        out = simulate_schedule([seq(0, [1])], {1: 2.0}, positives=[])
        assert out.all_positives == 0.0
        assert out.first_positive == 0.0

    def test_speedup_over(self):
        fast = simulate_schedule([seq(0, [1])], {1: 1.0}, positives=[1])
        slow = simulate_schedule([seq(0, [1, 2])], {2: 1.0, 1: 3.0},
                                 positives=[1])
        assert slow.speedup_over(fast) == pytest.approx(1 / 3)
        assert fast.speedup_over(slow) == pytest.approx(3.0)


class TestSsgBeatsRsgOnUniformCosts:
    def test_front_loading_wins(self):
        """With uniform costs and few positives, the SSG schedule's
        all-positives time beats RSG's -- the core Fig. 11/16 effect."""
        ids = list(range(100))
        positives = set(range(0, 100, 10))  # theta = 0.1
        costs = {b: 1.0 for b in ids}
        ssg, mode = ssg_sequences(ids, positives, 4, seed=1)
        rsg = rsg_sequences(ids, 4, seed=1)
        assert mode == "early"
        ssg_out = simulate_schedule(ssg, costs, positives)
        rsg_out = simulate_schedule(rsg, costs, positives)
        assert ssg_out.all_positives < rsg_out.all_positives
        # Positives complete within the SCP prefix: <= ceil(2*theta*|S|/k).
        assert ssg_out.all_positives <= 5 + 1e-9
