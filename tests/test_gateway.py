"""Sharded serving tier: ring placement, wire protocol, split stores,
shard-aware metrics, zipf traffic, and gateway equivalence/chaos.

The load-bearing assertions are the byte-identity ones: a plain engine,
a 1-shard gateway, an N-shard gateway and a gateway that lost a shard
mid-batch must produce answers whose canonical JSON bytes are equal --
:func:`repro.framework.wire.answer_bytes` is the contract the scaling
benchmark and the CI shard-smoke job both lean on.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.crypto.keys import DataOwnerKey
from repro.crypto.ops import OpCounter
from repro.framework import wire
from repro.framework.gateway import (
    Gateway,
    GatewayChaos,
    GatewayError,
    ShardClient,
)
from repro.framework.metrics import (
    CacheStats,
    JournalCounters,
    RunMetrics,
    base_cache_name,
    scoped_cache_name,
)
from repro.framework.placement import (
    HashRing,
    PlacementError,
    PlacementManifest,
    orphan_predicate,
    ring_for,
)
from repro.framework.prilo import Prilo, PriloConfig
from repro.framework.prilo_star import PriloStar
from repro.framework.server import QueryBatchEngine, QueryStatus, QueryStream
from repro.framework.shard import (
    LocalCluster,
    ShardServer,
    ShardSpec,
    make_shard_specs,
)
from repro.graph.ball import extract_ball
from repro.graph.query import Semantics
from repro.storage import ArtifactStore, StoreMiss, shard_split
from repro.workloads.datasets import tiny_dataset
from repro.workloads.traffic import TrafficSpec, generate_traffic, zipf_ranks


@pytest.fixture(scope="module")
def dataset():
    return tiny_dataset(seed=0, num_vertices=120, num_labels=8)


@pytest.fixture(scope="module")
def gw_config():
    return PriloConfig(k_players=2, modulus_bits=1024, q_bits=24,
                       r_bits=24, radii=(3,), seed=6)


def _baseline_answers(graph, config, queries, engine_cls=Prilo):
    engine = engine_cls.setup(graph, config)
    try:
        return [wire.canonical_answer_of_result(engine.run(q))
                for q in queries]
    finally:
        engine.close()


def _owners(ring, ids):
    return {ball_id: ring.owner_of(ball_id) for ball_id in ids}


def _assert_byte_identical(expected, answers):
    assert len(expected) == len(answers)
    for i, (a, b) in enumerate(zip(expected, answers)):
        assert b is not None, f"query {i} has no merged answer"
        assert wire.answer_bytes(a) == wire.answer_bytes(b), \
            f"query {i}: sharded answer diverges from baseline"


# ---------------------------------------------------------------------------
# Consistent-hash ring
# ---------------------------------------------------------------------------
class TestHashRing:
    def test_deterministic_and_complete(self):
        ids = list(range(400))
        a = HashRing([0, 1, 2, 3]).assign(ids)
        b = HashRing([0, 1, 2, 3]).assign(ids)
        assert a == b
        owned = [bid for member in a.values() for bid in member]
        assert sorted(owned) == ids  # partition: disjoint and complete

    def test_every_member_owns_something(self):
        assign = HashRing([0, 1, 2, 3]).assign(range(400))
        assert all(assign[m] for m in (0, 1, 2, 3))

    def test_minimal_movement_on_member_loss(self):
        ids = range(500)
        before = _owners(HashRing([0, 1, 2, 3]), ids)
        after = _owners(HashRing([0, 1, 3]), ids)
        moved = {bid for bid in ids if before[bid] != after[bid]}
        # Exactly the dead member's balls move, nothing else.
        assert moved == {bid for bid, owner in before.items() if owner == 2}

    @pytest.mark.parametrize("vnodes", [1, 16, 64])
    def test_replacement_moves_only_orphans_across_vnode_counts(
            self, vnodes):
        """The minimal-movement property is a property of consistent
        hashing itself, not of the default geometry: at 1, 16 and 64
        vnodes per member, a shard death moves exactly the dead member's
        balls, and the survivors' re-placement passes
        (``orphan_predicate`` with ``prev_members``) cover exactly that
        orphan set, disjointly."""
        ids = range(500)
        for dead in (0, 2, 3):
            prev = (0, 1, 2, 3)
            now = tuple(m for m in prev if m != dead)
            before = _owners(HashRing(list(prev), vnodes=vnodes), ids)
            after = _owners(HashRing(list(now), vnodes=vnodes), ids)
            orphans = {b for b, owner in before.items() if owner == dead}
            moved = {b for b in ids if before[b] != after[b]}
            assert moved == orphans, \
                f"vnodes={vnodes}, dead={dead}: non-orphans moved"
            covered: set[int] = set()
            for shard in now:
                keep = orphan_predicate(shard, now, prev, vnodes=vnodes)
                mine = {b for b in ids if keep(b)}
                assert not covered & mine
                covered |= mine
            assert covered == orphans

    def test_salt_and_vnodes_change_placement(self):
        ids = range(200)
        base = _owners(HashRing([0, 1, 2]), ids)
        assert _owners(HashRing([0, 1, 2], salt="other"), ids) != base
        assert _owners(HashRing([0, 1, 2], vnodes=8), ids) != base

    def test_rejects_degenerate_rings(self):
        with pytest.raises(PlacementError):
            HashRing([])
        with pytest.raises(PlacementError):
            HashRing([0, 1], vnodes=0)

    def test_ring_for_is_memoized(self):
        assert ring_for([2, 0, 1]) is ring_for([0, 1, 2])


class TestOrphanPredicate:
    def test_membership_partition(self):
        members = (0, 1, 2, 3)
        ids = range(300)
        owners = _owners(ring_for(members), ids)
        for shard in members:
            keep = orphan_predicate(shard, members)
            assert {b for b in ids if keep(b)} == \
                {b for b, o in owners.items() if o == shard}

    def test_replacement_pass_covers_exactly_the_moved_balls(self):
        prev = (0, 1, 2, 3)
        now = (0, 1, 3)
        ids = range(300)
        before = _owners(ring_for(prev), ids)
        orphans = {b for b, owner in before.items() if owner == 2}
        covered = set()
        for shard in now:
            keep = orphan_predicate(shard, now, prev)
            mine = {b for b in ids if keep(b)}
            assert not covered & mine  # survivors never overlap
            covered |= mine
        assert covered == orphans


class TestPlacementManifest:
    def test_round_trip(self, tmp_path):
        manifest = PlacementManifest(
            members=(0, 1, 2), vnodes=32, salt="s", graph_digest="d",
            radii=(3,), balls=9,
            shard_dirs={m: f"shard-{m}" for m in (0, 1, 2)},
            shard_balls={0: 3, 1: 3, 2: 3})
        manifest.write(tmp_path)
        loaded = PlacementManifest.read(tmp_path)
        assert loaded == manifest
        assert loaded.shard_of(17) == manifest.ring().owner_of(17)

    def test_rejects_wrong_kind(self, tmp_path):
        (tmp_path / "placement.json").write_text(json.dumps({"kind": "x"}))
        with pytest.raises(PlacementError):
            PlacementManifest.read(tmp_path)


# ---------------------------------------------------------------------------
# Wire protocol
# ---------------------------------------------------------------------------
class TestWire:
    def test_frame_round_trip(self):
        payload = {"t": "query", "qid": 3, "members": [0, 1]}
        assert wire.decode_frame(wire.encode_frame(payload)[4:]) == payload

    def test_rejects_non_object_payloads(self):
        with pytest.raises(wire.WireError):
            wire.decode_frame(b"[1, 2]")
        with pytest.raises(wire.WireError):
            wire.decode_frame(b"\xff\xfe")

    def test_rejects_oversized_frames(self, monkeypatch):
        monkeypatch.setattr(wire, "MAX_FRAME_BYTES", 16)
        with pytest.raises(wire.WireError):
            wire.encode_frame({"t": "x" * 64})

    def test_query_round_trip(self, dataset):
        for semantics in Semantics:
            query = dataset.random_query(size=5, semantics=semantics,
                                         seed=4)
            back = wire.query_from_jsonable(wire.query_to_jsonable(query))
            assert back.semantics is query.semantics
            assert back.diameter == query.diameter
            assert back.vertex_order == query.vertex_order
            assert [back.label(u) for u in back.vertex_order] == \
                [query.label(u) for u in query.vertex_order]

    def test_reader_rejects_an_oversized_announce_without_allocating(
            self):
        """A hostile length prefix beyond MAX_FRAME_BYTES must fail fast
        -- before the reader tries to buffer what the prefix claims."""
        async def main():
            reader = asyncio.StreamReader()
            huge = wire.MAX_FRAME_BYTES + 1
            reader.feed_data(huge.to_bytes(4, "big"))
            with pytest.raises(wire.WireError, match="announced"):
                await wire.read_frame(reader)

        asyncio.run(main())

    def test_reader_distinguishes_clean_eof_from_torn_frames(self):
        async def clean_eof():
            reader = asyncio.StreamReader()
            reader.feed_eof()
            return await wire.read_frame(reader)

        async def torn(prefix_only: bool):
            reader = asyncio.StreamReader()
            if prefix_only:
                reader.feed_data(b"\x00\x01")  # half a length prefix
            else:
                frame = wire.encode_frame({"t": "ping"})
                reader.feed_data(frame[:-3])  # body cut short
            reader.feed_eof()
            return await wire.read_frame(reader)

        assert asyncio.run(clean_eof()) is None
        for prefix_only in (True, False):
            with pytest.raises(wire.WireError, match="mid-frame"):
                asyncio.run(torn(prefix_only))

    def test_canonical_answer_is_form_insensitive(self, dataset):
        graph = dataset.graph
        sub = extract_ball(graph, next(iter(graph.vertices())), 1,
                           ball_id=0).graph
        from repro.graph.io import graph_to_json

        engine_side = wire.canonical_answer(
            [2, 1], [1], [1], {1: [sub]})
        wire_side = wire.canonical_answer(
            (1, 2), (1,), (1,), {"1": [graph_to_json(sub)]})
        assert wire.answer_bytes(engine_side) == wire.answer_bytes(wire_side)
        assert engine_side["num_matches"] == 1


class TestDeadClientPool:
    def test_mark_dead_fails_pending_and_tears_the_pool_down(self):
        """A client that loses one connection must not leave its sibling
        sockets as live pool entries: every pending request fails with
        ShardDied, every reader task is cancelled, every writer is
        closed, and the pool empties so no later request can round-robin
        onto a dead socket."""
        from repro.framework.gateway import ShardDied

        closed: list[int] = []

        class FakeWriter:
            def __init__(self, i):
                self.i = i

            def close(self):
                closed.append(self.i)

        async def main():
            client = ShardClient(3, "127.0.0.1", 1, pool=2)
            deaths: list[int] = []
            client.on_death = deaths.append
            client._conns = [(None, FakeWriter(0)), (None, FakeWriter(1))]
            client._readers = [
                asyncio.ensure_future(asyncio.sleep(60))
                for _ in range(2)]
            future = asyncio.get_running_loop().create_future()
            client._pending[0] = future
            client._mark_dead()
            assert client.dead
            assert deaths == [3]
            assert sorted(closed) == [0, 1]
            assert client._conns == [], "dead pool entries left live"
            assert not client._pending
            with pytest.raises(ShardDied):
                await future
            # A request after death fails fast instead of touching the
            # (now empty) pool.
            with pytest.raises(ShardDied):
                await client.request({"t": "ping"})
            await asyncio.sleep(0)  # let cancellations land
            assert all(t.cancelled() or t.done()
                       for t in client._readers)
            # Idempotent: a second connection-loss on the same client
            # must not re-fire on_death or double-close.
            client._mark_dead()
            assert deaths == [3] and sorted(closed) == [0, 1]

        asyncio.run(main())


# ---------------------------------------------------------------------------
# Shard-aware metrics merges (the satellite bugfix)
# ---------------------------------------------------------------------------
class TestShardAwareMetrics:
    def test_same_cache_label_from_two_shards_sums_exactly_once(self):
        metrics = RunMetrics()
        metrics.record_shard_caches(0, {"cmm": CacheStats(
            hits=10, misses=5, entries=7, weight=70, capacity=100)})
        metrics.record_shard_caches(1, {"cmm": CacheStats(
            hits=1, misses=2, entries=3, weight=30, capacity=100)})
        # Per-shard records stay intact under qualified keys...
        assert metrics.caches[scoped_cache_name("cmm", 0)].hits == 10
        assert metrics.caches[scoped_cache_name("cmm", 1)].entries == 3
        # ...and the fleet total sums counters exactly once.
        totals = metrics.cache_totals()
        assert set(totals) == {"cmm"}
        assert totals["cmm"].hits == 11
        assert totals["cmm"].misses == 7

    def test_repeated_verdicts_from_one_shard_accumulate(self):
        metrics = RunMetrics()
        for _ in range(3):
            metrics.record_shard_caches(2, {"pad": CacheStats(hits=2)})
        assert metrics.caches[scoped_cache_name("pad", 2)].hits == 6

    def test_base_cache_name_round_trip(self):
        assert base_cache_name(scoped_cache_name("cmm", 4)) == "cmm"
        assert base_cache_name("cmm") == "cmm"

    def test_cache_stats_from_dict_ignores_derived_fields(self):
        stats = CacheStats(hits=3, misses=1, entries=2, weight=9,
                           capacity=10)
        assert CacheStats.from_dict(stats.as_dict()) == stats

    def test_op_counter_merge_scoped_preserves_totals_and_round_trips(self):
        shard = OpCounter()
        shard.bucket("evaluation", "player:1").modmul = 7
        shard.bucket("evaluation", "user").modexp = 3
        fleet = OpCounter()
        fleet.merge_scoped(shard, scope="shard0")
        fleet.merge_scoped(shard, scope="shard1")
        assert fleet.totals().modmul == 14
        assert fleet.totals().modexp == 6
        assert fleet.bucket("evaluation", "player:1@shard0").modmul == 7
        back = OpCounter.from_dict(fleet.as_dict())
        assert back.as_dict() == fleet.as_dict()

    def test_journal_counters_round_trip(self):
        counters = JournalCounters(checkpoints_written=4, shares_skipped=2,
                                   reattestations=1)
        assert JournalCounters.from_dict(counters.as_dict()) == counters


# ---------------------------------------------------------------------------
# Zipf traffic
# ---------------------------------------------------------------------------
class TestTraffic:
    def test_deterministic_for_a_fixed_seed(self, dataset):
        spec = TrafficSpec(count=20, tenants=4, size=5, seed=9)
        qa, ra = generate_traffic(dataset, spec)
        qb, rb = generate_traffic(dataset, spec)
        assert ra == rb
        assert [repr(q) for q in qa] == [repr(q) for q in qb]

    def test_seed_changes_the_trace(self, dataset):
        base = TrafficSpec(count=20, tenants=4, size=5, seed=9)
        other = TrafficSpec(count=20, tenants=4, size=5, seed=10)
        assert generate_traffic(dataset, base)[1] != \
            generate_traffic(dataset, other)[1]

    def test_zipf_skew_favors_rank_one(self):
        ranks = zipf_ranks(500, 8, 1.2, seed=3)
        counts = [ranks.count(r) for r in range(8)]
        assert counts[0] == max(counts)
        assert counts[0] > counts[-1]
        assert len(ranks) == 500

    def test_trace_interleaves_tenants(self, dataset):
        spec = TrafficSpec(count=16, tenants=3, size=5, seed=2)
        queries, ranks = generate_traffic(dataset, spec)
        assert len(queries) == 16
        assert set(ranks) <= {0, 1, 2}
        assert len(set(ranks)) > 1


# ---------------------------------------------------------------------------
# Store shard-split + miss fallbacks
# ---------------------------------------------------------------------------
class TestShardSplit:
    @pytest.fixture(scope="class")
    def split(self, dataset, gw_config, tmp_path_factory):
        root = tmp_path_factory.mktemp("store")
        out = tmp_path_factory.mktemp("split")
        source = ArtifactStore.create(root / "src", dataset.graph, (3,),
                                      DataOwnerKey.generate(gw_config.seed))
        shard_split(root / "src", out / "shards", 3)
        return source, out / "shards"

    def test_placement_matches_ring_and_counts(self, split):
        source, out = split
        placement = PlacementManifest.read(out)
        assert placement.members == (0, 1, 2)
        assert placement.balls == sum(placement.shard_balls.values())
        ring = placement.ring()
        for member in placement.members:
            store = ArtifactStore.open(out / f"shard-{member}")
            held = set(store._slices)
            assert held == {b for b in source._slices
                            if ring.owner_of(b) == member}

    def test_shard_packs_verify_independently(self, split, gw_config):
        _, out = split
        store = ArtifactStore.open(out / "shard-1")
        report = store.verify(DataOwnerKey.generate(gw_config.seed))
        assert not report.tampered and not report.stale

    def test_refuses_non_empty_target(self, split, dataset, gw_config,
                                      tmp_path):
        from repro.storage import StoreError

        (tmp_path / "junk").write_text("x")
        with pytest.raises(StoreError):
            shard_split(tmp_path, tmp_path, 2)

    def test_missing_ball_raises_store_miss(self, split):
        _, out = split
        placement = PlacementManifest.read(out)
        store = ArtifactStore.open(out / "shard-0")
        foreign = next(b for b in placement.ring().assign(
            range(placement.balls))[1])
        with pytest.raises(StoreMiss):
            store.load_ball(foreign)

    def test_store_index_falls_back_to_live_extraction(self, split,
                                                       dataset):
        _, out = split
        store = ArtifactStore.open(out / "shard-0")
        index = store.ball_index(dataset.graph)
        addr_of = {bid: key for key, bid in index._ids.items()}
        missing = next(b for b in sorted(addr_of)
                       if b not in store._slices)
        center, radius = addr_of[missing]
        ball = index.ball(center, radius)
        expected = extract_ball(dataset.graph, center, radius,
                                ball_id=missing)
        assert ball.ball_id == missing
        assert set(ball.graph.vertices()) == set(expected.graph.vertices())
        # The miss must not quarantine the (healthy, just sliced) pack.
        assert not store.quarantined


# ---------------------------------------------------------------------------
# Shard server protocol (in-process, no fork)
# ---------------------------------------------------------------------------
class TestShardServer:
    def test_socket_round_trip(self, dataset, gw_config):
        query = dataset.random_query(size=5, seed=4)
        baseline = _baseline_answers(dataset.graph, gw_config, [query])[0]

        async def main():
            server = ShardServer(ShardSpec(0, dataset.graph, gw_config))
            await server.start()
            client = ShardClient(0, "127.0.0.1", server.port)
            try:
                await client.connect()
                assert client.hello["shard"] == 0
                pong = await client.request({"t": "ping"})
                assert pong["t"] == "pong" and pong["served"] == 0
                verdict = await client.request({
                    "t": "query", "qid": 0, "jindex": 0,
                    "query": wire.query_to_jsonable(query),
                    "members": [0]})
                assert verdict["t"] == "verdict"
                assert verdict["status"] == QueryStatus.OK
                unknown = await client.request({"t": "bogus"})
                assert unknown["t"] == "error"
                drained = await client.request({"t": "drain"})
                assert drained["t"] == "drained"
                assert drained["summary"]["queries"] == 1
                return verdict
            finally:
                await client.close()
                await server.close()

        verdict = asyncio.run(main())
        merged = wire.canonical_answer(
            verdict["candidates"], verdict["pm_positive"],
            verdict["verified"], verdict["matches"])
        assert wire.answer_bytes(merged) == wire.answer_bytes(baseline)
        assert "caches" in verdict and "ops" in verdict

    def test_query_stream_matches_batch_engine(self, dataset, gw_config):
        queries = dataset.random_queries(2, size=5, seed=4)
        with QueryBatchEngine(Prilo.setup(dataset.graph,
                                          gw_config)) as batch:
            batch_report = batch.serve(queries)
        with QueryBatchEngine(Prilo.setup(dataset.graph,
                                          gw_config)) as engine:
            stream = QueryStream(engine)
            outcomes = [stream.serve_one(q) for q in queries]
            stream.request_drain()
            late = stream.serve_one(queries[0])
            report = stream.report()
        assert [o.status for o in outcomes] == [QueryStatus.OK] * 2
        assert late.status == QueryStatus.DRAINED
        for batch_result, stream_result in zip(batch_report.results,
                                               report.results):
            assert wire.answer_bytes(
                wire.canonical_answer_of_result(batch_result)) == \
                wire.answer_bytes(
                    wire.canonical_answer_of_result(stream_result))


# ---------------------------------------------------------------------------
# Gateway equivalence (the tentpole contract)
# ---------------------------------------------------------------------------
class TestGatewayEquivalence:
    @pytest.mark.parametrize("semantics", list(Semantics))
    def test_two_shards_match_plain_engine_with_pruning(self, dataset,
                                                        gw_config,
                                                        semantics):
        queries = dataset.random_queries(3, size=5, semantics=semantics,
                                         seed=4)
        graph = dataset.graph_for(semantics)
        expected = _baseline_answers(graph, gw_config, queries,
                                     engine_cls=PriloStar)
        with LocalCluster(make_shard_specs(graph, gw_config, 2,
                                           engine="prilo-star")) as cluster:
            report = Gateway(cluster.handles).run(queries)
        assert [o.status for o in report.outcomes] == \
            [QueryStatus.OK] * len(queries)
        _assert_byte_identical(expected, report.answers)

    def test_one_and_four_shards_match_plain_engine(self, dataset,
                                                    gw_config):
        queries, _ = generate_traffic(
            dataset, TrafficSpec(count=6, tenants=3, size=5, seed=11))
        expected = _baseline_answers(dataset.graph, gw_config, queries)
        for shards in (1, 4):
            specs = make_shard_specs(dataset.graph, gw_config, shards)
            with LocalCluster(specs) as cluster:
                report = Gateway(cluster.handles).run(queries)
            _assert_byte_identical(expected, report.answers)
            assert report.shards == shards
            assert set(report.per_shard_busy) == set(range(shards))
            assert report.critical_path_seconds <= report.busy_seconds

    def test_shard_death_mid_batch_recovers_byte_identically(self, dataset,
                                                             gw_config):
        queries, _ = generate_traffic(
            dataset, TrafficSpec(count=8, tenants=3, size=5, seed=11))
        expected = _baseline_answers(dataset.graph, gw_config, queries)
        specs = make_shard_specs(dataset.graph, gw_config, 4)
        with LocalCluster(specs) as cluster:
            gateway = Gateway(cluster.handles,
                              chaos=GatewayChaos(seed=42,
                                                 kill_after_verdicts=2))
            report = gateway.run(queries)
        assert report.deaths, "chaos must kill a shard mid-batch"
        assert report.re_dispatches > 0
        assert len(report.final_members) == 3
        assert report.completed == len(queries), "no query may be lost"
        _assert_byte_identical(expected, report.answers)

    def test_gateway_serves_from_split_store_with_journals(
            self, dataset, gw_config, tmp_path):
        queries = dataset.random_queries(2, size=5, seed=4)
        expected = _baseline_answers(dataset.graph, gw_config, queries)
        ArtifactStore.create(tmp_path / "src", dataset.graph, (3,),
                             DataOwnerKey.generate(gw_config.seed))
        shard_split(tmp_path / "src", tmp_path / "shards", 2)
        specs = make_shard_specs(
            dataset.graph, gw_config, 2,
            store_root=str(tmp_path / "shards"),
            journal_dir=str(tmp_path / "wal"))
        (tmp_path / "wal").mkdir()
        with LocalCluster(specs) as cluster:
            report = Gateway(cluster.handles).run(queries)
        _assert_byte_identical(expected, report.answers)
        assert report.metrics.journal.checkpoints_written > 0
        assert (tmp_path / "wal" / "shard-0.wal").exists()
        assert (tmp_path / "wal" / "shard-1.wal").exists()

    def test_rejects_degenerate_fleets(self):
        with pytest.raises(GatewayError):
            Gateway([])

    def test_chaos_rejects_unknown_victim(self):
        with pytest.raises(GatewayError):
            GatewayChaos(kill_shard=9).resolve((0, 1))
