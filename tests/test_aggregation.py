"""Tests for the shared chunk/sum aggregation machinery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import (
    BallCiphertextResult,
    ChunkPlan,
    aggregate_items,
    chunked_product,
    decide_positive,
)
from repro.crypto.cgbe import CGBE


@pytest.fixture(scope="module")
def scheme():
    return CGBE.generate(modulus_bits=512, q_bits=16, r_bits=16, seed=4)


def factors_for(scheme, flags):
    return [scheme.encrypt_q() if f else scheme.encrypt(1) for f in flags]


class TestChunkPlan:
    def test_summable_when_fits(self, scheme):
        plan = ChunkPlan.plan(scheme.params, 8, expected_terms=16)
        assert plan.summable
        assert plan.chunks_per_item == 1

    def test_chunked_when_too_big(self, scheme):
        plan = ChunkPlan.plan(scheme.params, 100, expected_terms=16)
        assert not plan.summable
        assert plan.chunks_per_item == -(-100 // plan.chunk_factors)

    def test_zero_factors_rejected(self, scheme):
        with pytest.raises(ValueError):
            ChunkPlan.plan(scheme.params, 0)

    def test_impossible_modulus_rejected(self):
        tiny = CGBE.generate(modulus_bits=40, q_bits=16, r_bits=16, seed=1)
        with pytest.raises(ValueError, match="cannot hold"):
            ChunkPlan.plan(tiny.params, 4)


class TestChunkedProduct:
    def test_padding_preserves_constant_length(self, scheme):
        plan = ChunkPlan.plan(scheme.params, 6, expected_terms=4)
        chunks = chunked_product(scheme.params,
                                 factors_for(scheme, [True]),
                                 scheme.encrypt_one(), plan)
        assert len(chunks) == plan.chunks_per_item
        assert all(c.power == plan.chunk_factors for c in chunks)

    def test_q_detection_across_chunks(self, scheme):
        plan = ChunkPlan.plan(scheme.params, 20, expected_terms=1 << 40)
        assert not plan.summable
        flags = [False] * 19 + [True]  # violation in the last chunk
        chunks = chunked_product(scheme.params, factors_for(scheme, flags),
                                 scheme.encrypt_one(), plan)
        assert any(scheme.has_factor_q(c) for c in chunks)

    def test_too_many_factors_rejected(self, scheme):
        """Over-long input names the actual and planned sizes -- never a
        silent truncation."""
        plan = ChunkPlan.plan(scheme.params, 2)
        with pytest.raises(ValueError, match=r"3 factors.*ChunkPlan\.plan"):
            chunked_product(scheme.params, factors_for(scheme, [1, 1, 1]),
                            scheme.encrypt_one(), plan)


class TestAggregateAndDecide:
    def test_empty_is_negative(self, scheme):
        plan = ChunkPlan.plan(scheme.params, 4)
        result = aggregate_items(scheme.params, 0, [], plan)
        assert result.empty
        assert not decide_positive(scheme, result)

    def test_bypassed_is_positive(self, scheme):
        result = BallCiphertextResult(ball_id=0, bypassed=True)
        assert decide_positive(scheme, result)

    def test_ciphertext_count(self, scheme):
        plan = ChunkPlan.plan(scheme.params, 4)
        items = [chunked_product(scheme.params,
                                 factors_for(scheme, [True] * 4),
                                 scheme.encrypt_one(), plan)
                 for _ in range(3)]
        result = aggregate_items(scheme.params, 0, items, plan)
        assert result.ciphertext_count() == 1  # summable mode

    @given(st.lists(st.lists(st.booleans(), min_size=2, max_size=6),
                    min_size=1, max_size=6),
           st.booleans())
    @settings(max_examples=50, deadline=None)
    def test_decision_equals_plaintext_semantics(self, rows, force_chunks):
        """Property: positive iff some item has no violating factor --
        identical in summed and chunked layouts."""
        scheme = CGBE.generate(modulus_bits=512, q_bits=16, r_bits=16,
                               seed=5)
        width = max(len(r) for r in rows)
        rows = [r + [False] * (width - len(r)) for r in rows]
        expected_terms = (1 << 40) if force_chunks and width > 1 else 16
        plan = ChunkPlan.plan(scheme.params, width,
                              expected_terms=expected_terms)
        c_one = scheme.encrypt_one()
        items = [chunked_product(scheme.params, factors_for(scheme, row),
                                 c_one, plan) for row in rows]
        result = aggregate_items(scheme.params, 0, items, plan)
        assert decide_positive(scheme, result) == any(
            not any(row) for row in rows)
