"""Backend-equivalence tests for the parallel ball-evaluation engine.

The contract under test: the executor backend is a pure scheduling choice.
Serial and process-pool runs of the same configured engine must produce
byte-identical answer fields (``matches``, ``verified_ids``,
``pm_positive_ids``) -- the per-ball work is deterministic given the
ciphertext inputs, and merging is first-evaluation-wins in sequence order
regardless of which worker finished first.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.aggregation import ChunkPlan, chunked_product
from repro.core.bf_pruning import BFConfig
from repro.core.enumeration import iter_cmms
from repro.core.verification import (
    verification_plan,
    verify_ball,
    verify_ball_streaming,
)
from repro.crypto.cgbe import CGBE, CiphertextPowerCache
from repro.framework.executor import (
    ProcessExecutor,
    SerialExecutor,
    create_executor,
)
from repro.framework.prilo import Prilo, PriloConfig
from repro.framework.prilo_star import PriloStar
from repro.graph.generators import fig3_graph, fig3_query
from repro.graph.query import Semantics


@pytest.fixture(scope="module")
def config():
    return PriloConfig(k_players=2, modulus_bits=1024, q_bits=16,
                       r_bits=16, radii=(1, 2, 3), seed=3,
                       bf=BFConfig(eta=16, expected_trees=200))


def run_pair(graph, query, config, *, pruning):
    """Run the same query under both backends; return (serial, process)."""
    cls = PriloStar if pruning else Prilo
    serial = cls.setup(graph, replace(config, executor="serial"))
    with cls.setup(graph, replace(config, executor="process",
                                  parallelism=2)) as parallel:
        return serial.run(query), parallel.run(query)


class TestBackendEquivalence:
    @pytest.mark.parametrize("pruning", [False, True],
                             ids=["plain", "bf+twiglet"])
    @pytest.mark.parametrize("semantics", [Semantics.HOM,
                                           Semantics.SUB_ISO,
                                           Semantics.SSIM])
    def test_identical_answers(self, dataset, config, semantics, pruning):
        graph = dataset.graph_for(semantics)
        query = dataset.random_queries(1, size=4, diameter=2,
                                       semantics=semantics, seed=5)[0]
        serial, parallel = run_pair(graph, query, config, pruning=pruning)
        assert serial.matches == parallel.matches
        assert serial.verified_ids == parallel.verified_ids
        assert serial.pm_positive_ids == parallel.pm_positive_ids
        assert serial.candidate_ids == parallel.candidate_ids
        assert serial.metrics.cmms_enumerated == \
            parallel.metrics.cmms_enumerated
        assert serial.metrics.bypassed_balls == \
            parallel.metrics.bypassed_balls

    def test_fig3_match_identical(self, config):
        serial, parallel = run_pair(fig3_graph(), fig3_query(), config,
                                    pruning=False)
        assert serial.num_matches == parallel.num_matches == 1
        (a,) = [m for ms in serial.matches.values() for m in ms]
        (b,) = [m for ms in parallel.matches.values() for m in ms]
        assert set(a.vertices()) == set(b.vertices())
        assert set(a.edges()) == set(b.edges())


class TestExecutorMetrics:
    def test_process_run_records_per_worker_wall(self, dataset, config):
        query = dataset.random_queries(1, size=4, diameter=2, seed=6)[0]
        with PriloStar.setup(
                dataset.graph,
                replace(config, executor="process",
                        parallelism=2)) as engine:
            result = engine.run(query)
        metrics = result.metrics
        assert metrics.executor_backend == "process"
        assert metrics.workers == 2
        assert metrics.per_worker_eval_wall
        assert all(w > 0 for w in metrics.per_worker_eval_wall.values())
        assert metrics.per_worker_pm_wall
        assert metrics.eval_wall_seconds == \
            max(metrics.per_worker_eval_wall.values())
        # The comparability invariant: evaluation stays the per-ball sum.
        assert metrics.timings.evaluation == pytest.approx(
            sum(metrics.per_ball_eval_cost.values()))

    def test_serial_run_records_backend(self, dataset, config):
        query = dataset.random_queries(1, size=4, diameter=2, seed=6)[0]
        result = Prilo.setup(dataset.graph, config).run(query)
        metrics = result.metrics
        assert metrics.executor_backend == "serial"
        assert metrics.workers == 1
        assert metrics.eval_wall_seconds == pytest.approx(
            sum(metrics.per_worker_eval_wall.values()))


class TestConfigValidation:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            PriloConfig(executor="threads")

    def test_nonpositive_parallelism_rejected(self):
        with pytest.raises(ValueError, match="parallelism"):
            PriloConfig(parallelism=0)

    def test_factory_matches_config_names(self):
        assert isinstance(create_executor("serial", 1), SerialExecutor)
        with create_executor("process", 3) as executor:
            assert isinstance(executor, ProcessExecutor)
            assert executor.workers == 3
        with pytest.raises(ValueError, match="threads"):
            create_executor("threads", 1)

    def test_close_is_idempotent(self):
        executor = create_executor("process", 2)
        executor.close()
        executor.close()


class TestPowerCacheFastPath:
    """The ``c_one^n`` padding fast path must equal the naive product."""

    @pytest.fixture(scope="class")
    def scheme(self):
        return CGBE.generate(modulus_bits=512, q_bits=16, r_bits=16, seed=9)

    def test_powers_match_naive_chain(self, scheme):
        params = scheme.params
        base = scheme.encrypt_one()
        cache = CiphertextPowerCache(params, base)
        naive = base
        for exponent in range(2, 12):
            naive = CGBE.multiply(params, naive, base)
            fast = cache.power(exponent)
            assert fast.value == naive.value
            assert fast.power == naive.power
            assert fast.value_bits == naive.value_bits

    def test_matches_cgbe_power(self, scheme):
        params = scheme.params
        base = scheme.encrypt(7)
        cache = CiphertextPowerCache(params, base)
        for exponent in (1, 2, 3, 5, 8, 13):
            assert cache.power(exponent).value == \
                CGBE.power(params, base, exponent).value

    def test_product_with_cache_identical(self, scheme):
        params = scheme.params
        c_one = scheme.encrypt_one()
        cache = CiphertextPowerCache(params, c_one)
        factors = [scheme.encrypt(3), scheme.encrypt(5)] + [c_one] * 10
        plain = CGBE.product(params, factors)
        cached = CGBE.product(params, factors, power_cache=cache)
        assert cached.value == plain.value
        assert cached.power == plain.power

    def test_chunked_product_with_pad_cache_identical(self, scheme):
        params = scheme.params
        c_one = scheme.encrypt_one()
        plan = ChunkPlan.plan(params, 12, expected_terms=4)
        factors = [scheme.encrypt_q(), scheme.encrypt(2)]
        plain = chunked_product(params, list(factors), c_one, plan)
        cached = chunked_product(params, list(factors), c_one, plan,
                                 pad_cache=CiphertextPowerCache(params,
                                                                c_one))
        assert [c.value for c in cached] == [c.value for c in plain]
        assert [c.power for c in cached] == [c.power for c in plain]

    def test_overflow_still_raised(self, scheme):
        from repro.crypto.cgbe import OverflowError_

        params = scheme.params
        cache = CiphertextPowerCache(params, scheme.encrypt_one())
        with pytest.raises(OverflowError_):
            cache.power(10_000)


class TestStreamingVerification:
    """Fused enumerate+verify must agree with the two-pass pipeline."""

    def test_streaming_equals_batch(self, fig3, fig3_ball, cgbe):
        query, _ = fig3
        params = cgbe.params
        matrix = _encrypted_matrix(cgbe, query)
        c_one = cgbe.encrypt_one()
        plan = verification_plan(params, query)
        cmms = list(iter_cmms(query, fig3_ball))
        batch = verify_ball(params, matrix, c_one, fig3_ball, cmms, plan)
        streamed, enumerated, truncated = verify_ball_streaming(
            params, matrix, c_one, fig3_ball, iter_cmms(query, fig3_ball),
            plan)
        assert not truncated
        assert enumerated == len(cmms)
        assert _result_values(streamed) == _result_values(batch)

    def test_streaming_truncates_at_limit(self, fig3, fig3_ball, cgbe):
        query, _ = fig3
        params = cgbe.params
        matrix = _encrypted_matrix(cgbe, query)
        plan = verification_plan(params, query)
        total = sum(1 for _ in iter_cmms(query, fig3_ball))
        assert total > 1
        result, enumerated, truncated = verify_ball_streaming(
            params, matrix, cgbe.encrypt_one(), fig3_ball,
            iter_cmms(query, fig3_ball), plan, limit=total - 1)
        assert truncated
        assert result.bypassed
        assert enumerated == total - 1


def _result_values(result):
    """Every ciphertext value of a BallCiphertextResult, any shape."""
    if result.summed is not None:
        return [result.summed.value]
    if result.per_item is not None:
        return [c.value for chunks in result.per_item for c in chunks]
    return [result.bypassed, result.empty]


def _encrypted_matrix(cgbe, query):
    from repro.core.encoding import encrypt_query_matrix

    return encrypt_query_matrix(cgbe, query)
