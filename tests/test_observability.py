"""Privacy-aware observability: construction-time redaction, the
leakage audit, exporters, and the traced == untraced answer identity
(DESIGN.md section 10).

The redaction property asserted across all three semantics and pruning
on/off: *no* dealer/player/enclave/sp-scope span of a traced run carries
an attribute outside the allowed-observation model of
``repro.analysis.leakage`` -- and the only way to get one past the
constructor (the :class:`UncheckedAttrs` taint hook) is exactly what the
leakage audit exists to flag.
"""

import json

import pytest

from repro.analysis.leakage import SPAN_OBSERVABLE_KEYS, SPAN_STRING_KEYS
from repro.core.bf_pruning import BFConfig
from repro.framework.prilo import Prilo
from repro.framework.prilo_star import PriloStar
from repro.framework.server import QueryBatchEngine
from repro.graph.query import Semantics
from repro.observability import (
    RESTRICTED_ROLE_CLASSES,
    LeakageAuditReport,
    RedactionError,
    Span,
    Tracer,
    audit_spans,
    player_role,
    prometheus_text,
    read_trace,
    render_summary,
    role_class,
    summarize_spans,
    write_trace,
)
from repro.observability.spans import NULL_TRACER, UncheckedAttrs

ALL_SEMANTICS = (Semantics.HOM, Semantics.SUB_ISO, Semantics.SSIM)


def _query(dataset, semantics):
    return dataset.random_queries(1, size=4, diameter=2,
                                  semantics=semantics, seed=13)[0]


def _engine(dataset, config, semantics, pruning, tracer=None):
    from dataclasses import replace

    graph = dataset.graph_for(semantics)
    if pruning:
        config = replace(config, use_twiglet=True, use_bf=True,
                         bf=BFConfig(eta=16, expected_trees=200))
        return PriloStar.setup(graph, config, tracer=tracer)
    return Prilo.setup(graph, config, tracer=tracer)


def _answer_key(result):
    return (result.candidate_ids,
            tuple(sorted(result.pm_positive_ids)),
            tuple(sorted(result.verified_ids)),
            tuple(sorted(result.match_ball_ids)),
            result.num_matches,
            tuple(sorted(result.matches)))


# ---------------------------------------------------------------------------
# Construction-time redaction: the policy itself
# ---------------------------------------------------------------------------
class TestRedactionPolicy:
    def test_user_scope_unrestricted(self):
        # The user owns the plaintext; their view carries anything.
        Span("query_matching", "user", 0.0, 0.0,
             {"matches": ["v1", "v2"], "raw": b"\x00"})

    @pytest.mark.parametrize("role", ["dealer", "player:0", "player:3",
                                      "enclave", "sp"])
    def test_restricted_scope_allows_model_counts(self, role):
        span = Span("evaluation", role, 0.0, 0.1,
                    {"balls": 12, "cmms": 40, "bytes": 1024,
                     "replayed": False, "share_key": "eval:0:p1"})
        assert role_class(span.role) in RESTRICTED_ROLE_CLASSES

    @pytest.mark.parametrize("role", ["dealer", "player:1", "enclave",
                                      "sp"])
    def test_query_dependent_key_rejected(self, role):
        with pytest.raises(RedactionError, match="allowed-observation"):
            Span("evaluation", role, 0.0, 0.0, {"ball_answer": 1})

    def test_string_under_numeric_key_rejected(self):
        with pytest.raises(RedactionError, match="public coordinate"):
            Span("evaluation", "dealer", 0.0, 0.0,
                 {"balls": "match@ball:17"})

    @pytest.mark.parametrize("value", [b"\x01\x02", ["v1"], {"v": 1},
                                       ("a",)])
    def test_smuggling_shapes_rejected(self, value):
        with pytest.raises(RedactionError, match="may only"):
            Span("evaluation", "sp", 0.0, 0.0, {"bytes": value})

    def test_unknown_role_rejected(self):
        with pytest.raises(RedactionError, match="unknown role"):
            Span("evaluation", "auditor", 0.0, 0.0, {})

    def test_string_keys_subset_of_observable(self):
        assert SPAN_STRING_KEYS <= SPAN_OBSERVABLE_KEYS

    def test_unchecked_attrs_bypass_then_audit_catches(self):
        span = Span("taint", "dealer", 0.0, 0.0,
                    UncheckedAttrs({"ball_answer": "match@ball:17"}))
        report = audit_spans([span])
        assert not report.ok
        assert report.violations[0].attribute == "ball_answer"

    def test_tracer_span_context_checks_at_exit(self):
        tracer = Tracer()
        with pytest.raises(RedactionError):
            with tracer.span("evaluation", "dealer") as span:
                span.set("verdict", "positive")
        assert tracer.spans == []  # the leaking span never materialized

    def test_null_tracer_is_inert(self):
        NULL_TRACER.event("evaluation", "dealer", verdict="anything")
        with NULL_TRACER.span("evaluation", "dealer") as span:
            span.set("verdict", "anything")
        assert NULL_TRACER.spans == ()
        assert not NULL_TRACER.enabled


# ---------------------------------------------------------------------------
# The redaction property over real traced runs
# ---------------------------------------------------------------------------
class TestTracedRuns:
    @pytest.mark.parametrize("semantics", ALL_SEMANTICS,
                             ids=[s.value for s in ALL_SEMANTICS])
    @pytest.mark.parametrize("pruning", [False, True],
                             ids=["prilo", "prilo-star"])
    def test_restricted_spans_within_bound(self, dataset, test_config,
                                           semantics, pruning):
        """Every SP-side span of a real run passes the audit -- by
        construction (the policy ran in ``__post_init__``) and by
        re-check (the audit agrees)."""
        tracer = Tracer()
        engine = _engine(dataset, test_config, semantics, pruning,
                         tracer=tracer)
        engine.run(_query(dataset, semantics))

        assert tracer.spans, "traced run produced no spans"
        restricted = [s for s in tracer.spans
                      if role_class(s.role) in RESTRICTED_ROLE_CLASSES]
        assert restricted, "no restricted-scope spans; test is vacuous"
        report = audit_spans(tracer.spans)
        assert report.ok, [str(v) for v in report.violations]
        assert report.restricted_spans == len(restricted)
        # The per-role coverage the tentpole promises: user + dealer
        # always; player/enclave only when pruning fans out PM shares.
        roles = {role_class(s.role) for s in tracer.spans}
        assert {"user", "dealer", "sp"} <= roles
        if pruning:
            assert "enclave" in roles

    @pytest.mark.parametrize("semantics", ALL_SEMANTICS,
                             ids=[s.value for s in ALL_SEMANTICS])
    def test_traced_answers_identical_to_untraced(self, dataset,
                                                  test_config, semantics):
        query = _query(dataset, semantics)
        untraced = _engine(dataset, test_config, semantics, True).run(query)
        traced = _engine(dataset, test_config, semantics, True,
                         tracer=Tracer()).run(query)
        assert _answer_key(traced) == _answer_key(untraced)

    def test_audit_flags_injected_taint(self, dataset, test_config):
        tracer = Tracer()
        engine = _engine(dataset, test_config, Semantics.HOM, True,
                         tracer=tracer)
        engine.run(_query(dataset, Semantics.HOM))
        assert audit_spans(tracer.spans).ok

        tracer.inject_unchecked("taint_probe", "dealer",
                                ball_answer="match@ball:17")
        report = audit_spans(tracer.spans)
        assert not report.ok
        assert len(report.violations) == 1
        assert report.violations[0].span_name == "taint_probe"

    def test_batch_serving_spans(self, dataset, test_config, tmp_path):
        from repro.storage.journal import RunJournal, journal_key

        tracer = Tracer()
        engine = _engine(dataset, test_config, Semantics.HOM, True,
                         tracer=tracer)
        queries = [_query(dataset, Semantics.HOM)] * 2
        journal = RunJournal(tmp_path / "j", journal_key(test_config.seed))
        with QueryBatchEngine(engine, journal=journal) as server:
            report = server.serve(queries)
        journal.close()
        assert len(report.results) == 2
        names = {s.name for s in tracer.spans}
        assert "admission" in names
        assert "journal_replay" in names
        assert "query_commit" in names
        commits = [s for s in tracer.spans if s.name == "query_commit"]
        assert [s.attrs["index"] for s in commits] == [0, 1]
        assert not any(s.attrs["replayed"] for s in commits)
        assert audit_spans(tracer.spans).ok


# ---------------------------------------------------------------------------
# Exporters: JSONL round-trip, Prometheus text, summarize
# ---------------------------------------------------------------------------
class TestExporters:
    @pytest.fixture(scope="class")
    def traced_batch(self, dataset, test_config):
        tracer = Tracer()
        engine = _engine(dataset, test_config, Semantics.HOM, True,
                         tracer=tracer)
        with QueryBatchEngine(engine) as server:
            report = server.serve([_query(dataset, Semantics.HOM)] * 2)
        return report, tracer

    def test_jsonl_round_trip(self, traced_batch, tmp_path):
        _, tracer = traced_batch
        path = write_trace(tmp_path / "t.jsonl", tracer.spans,
                           meta={"command": "test"})
        meta, spans = read_trace(path)
        assert meta["format"] == 1
        assert meta["command"] == "test"
        assert meta["spans"] == len(spans) == len(tracer.spans)
        assert spans == [
            dict(s.as_dict(), type="span") for s in tracer.spans]
        # Every line is valid standalone JSON (grep-ability contract).
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_round_tripped_trace_still_audits(self, traced_batch,
                                              tmp_path):
        _, tracer = traced_batch
        path = write_trace(tmp_path / "t.jsonl", tracer.spans)
        _, spans = read_trace(path)
        assert audit_spans(spans).ok

    def test_edited_trace_fails_offline_audit(self, traced_batch,
                                              tmp_path):
        """The audit's reason to exist beyond the constructor: a trace
        edited on disk (or written by a buggy exporter) is still
        checked against the same model."""
        _, tracer = traced_batch
        path = write_trace(tmp_path / "t.jsonl", tracer.spans)
        lines = path.read_text().splitlines()
        doctored = json.loads(lines[1])
        doctored["attrs"]["c_sgx"] = "0xdeadbeef"
        doctored["role"] = "dealer"
        lines[1] = json.dumps(doctored)
        path.write_text("\n".join(lines) + "\n")
        _, spans = read_trace(path)
        report = audit_spans(spans)
        assert not report.ok
        assert any(v.attribute == "c_sgx" for v in report.violations)

    def test_prometheus_text(self, traced_batch):
        report, tracer = traced_batch
        text = prometheus_text(report, tracer.spans)
        assert "# TYPE repro_batch_queries_total counter" in text
        assert "repro_batch_queries_total 2" in text
        assert 'repro_query_latency_seconds{query="0"}' in text
        assert 'repro_cmm_cache_events_total{event="hits"}' in text
        assert "repro_message_bytes_total" in text
        assert 'repro_span_seconds_count{' in text
        # Text-exposition shape: every non-comment line is `name{..} v`.
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            name, value = line.rsplit(" ", 1)
            assert name[0].isalpha()
            float(value)

    def test_summarize_and_render(self, traced_batch):
        _, tracer = traced_batch
        groups = summarize_spans([s.as_dict() for s in tracer.spans])
        assert groups
        total = sum(stats.count for stats in groups.values())
        assert total == len(tracer.spans)
        for (role, name), stats in groups.items():
            assert stats.count == sum(stats.buckets)
            assert stats.max_s <= stats.total_s + 1e-12

        text = render_summary(groups)
        assert "[user]" in text and "[dealer]" in text
        assert render_summary({}) == "trace is empty: no spans\n"

    def test_audit_report_summary_lines(self):
        ok = LeakageAuditReport(checked_spans=3, restricted_spans=1)
        assert "ok" in ok.summary_line()
        assert ok.as_dict()["ok"] is True
        tainted = audit_spans([{"name": "x", "role": "sp",
                                "attrs": {"secret": 1}}])
        assert "LEAKAGE" in tainted.summary_line()


def test_player_role_helpers():
    assert player_role(3) == "player:3"
    assert role_class("player:3") == "player"
    assert role_class("enclave") == "enclave"
