"""Tests for the stdlib authenticated stream cipher (AES-256 stand-in)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.stream_cipher import AuthenticationError, StreamCipher


@pytest.fixture(scope="module")
def cipher():
    return StreamCipher(StreamCipher.generate_key(seed=1))


class TestRoundtrip:
    def test_basic(self, cipher):
        blob = cipher.encrypt(b"hello balls")
        assert cipher.decrypt(blob) == b"hello balls"

    def test_empty_plaintext(self, cipher):
        assert cipher.decrypt(cipher.encrypt(b"")) == b""

    def test_large_payload(self, cipher):
        data = bytes(range(256)) * 500
        assert cipher.decrypt(cipher.encrypt(data)) == data

    def test_fresh_nonce_randomizes(self, cipher):
        assert cipher.encrypt(b"x") != cipher.encrypt(b"x")

    def test_fixed_nonce_reproducible(self, cipher):
        nonce = b"n" * 16
        assert cipher.encrypt(b"x", nonce) == cipher.encrypt(b"x", nonce)

    def test_overhead(self, cipher):
        blob = cipher.encrypt(b"abc")
        assert len(blob) == 3 + StreamCipher.overhead_bytes()


class TestAuthentication:
    def test_tampered_body_rejected(self, cipher):
        blob = bytearray(cipher.encrypt(b"payload"))
        blob[20] ^= 1
        with pytest.raises(AuthenticationError):
            cipher.decrypt(bytes(blob))

    def test_tampered_tag_rejected(self, cipher):
        blob = bytearray(cipher.encrypt(b"payload"))
        blob[-1] ^= 1
        with pytest.raises(AuthenticationError):
            cipher.decrypt(bytes(blob))

    def test_truncated_rejected(self, cipher):
        with pytest.raises(AuthenticationError):
            cipher.decrypt(b"short")

    def test_wrong_key_rejected(self, cipher):
        other = StreamCipher(StreamCipher.generate_key(seed=2))
        with pytest.raises(AuthenticationError):
            other.decrypt(cipher.encrypt(b"secret"))


class TestKeyHandling:
    def test_key_length_enforced(self):
        with pytest.raises(ValueError):
            StreamCipher(b"short")

    def test_seeded_keys_deterministic(self):
        assert StreamCipher.generate_key(3) == StreamCipher.generate_key(3)
        assert StreamCipher.generate_key(3) != StreamCipher.generate_key(4)

    def test_bad_nonce_length(self):
        cipher = StreamCipher(StreamCipher.generate_key(seed=5))
        with pytest.raises(ValueError):
            cipher.encrypt(b"x", nonce=b"short")


class TestProperties:
    @given(st.binary(max_size=2000))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, data):
        cipher = StreamCipher(StreamCipher.generate_key(seed=8))
        assert cipher.decrypt(cipher.encrypt(data)) == data

    @given(st.binary(min_size=16, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_ciphertext_hides_plaintext(self, data):
        """Payloads of >= 16 bytes never appear verbatim in the blob
        (shorter fragments can collide with nonce/tag bytes by chance)."""
        cipher = StreamCipher(StreamCipher.generate_key(seed=9))
        blob = cipher.encrypt(data)
        assert data not in blob
