"""Tests for h-twiglets and twiglet tables (Sec. 4.2, Table 2, Alg. 5)."""

import pytest

from repro.core.table_pruning import player_table_prune, table_plan
from repro.core.aggregation import decide_positive
from repro.core.twiglets import (
    Twiglet,
    all_twiglet_shapes,
    build_twiglet_tables,
    twiglet_table_size,
    twiglets_from,
)
from repro.graph.ball import extract_ball


class TestTwigletShape:
    def test_render_matches_table2_notation(self):
        t = Twiglet(path=("'B'", "'A'"), fork=("'C'", "'D'"))
        assert t.render() == "['B', 'A', ['C', 'D']]"
        p = Twiglet(path=("'B'", "'A'", "'C'"))
        assert p.render() == "['B', 'A', 'C']"

    def test_distinct_labels_enforced(self):
        with pytest.raises(ValueError):
            Twiglet(path=("a", "a", "b"))
        with pytest.raises(ValueError):
            Twiglet(path=("a", "b"), fork=("b", "c"))

    def test_fork_canonical_order_enforced(self):
        with pytest.raises(ValueError):
            Twiglet(path=("a", "b"), fork=("d", "c"))

    def test_min_path_length(self):
        with pytest.raises(ValueError):
            Twiglet(path=("a",))


class TestTable2:
    """The 3-twiglet table T(u1) of Table 2, literally."""

    def test_nine_shapes(self, fig3):
        query, _ = fig3
        shapes = all_twiglet_shapes("B", query.alphabet, 3)
        assert len(shapes) == 9
        assert twiglet_table_size(4, 3) == 9

    def test_exact_rows(self, fig3):
        query, _ = fig3
        rendered = {s.render() for s in all_twiglet_shapes(
            "B", query.alphabet, 3)}
        assert rendered == {
            "['B', 'A', 'C']", "['B', 'A', 'D']", "['B', 'A', ['C', 'D']]",
            "['B', 'C', 'A']", "['B', 'C', 'D']", "['B', 'C', ['A', 'D']]",
            "['B', 'D', 'A']", "['B', 'D', 'C']", "['B', 'D', ['A', 'C']]",
        }

    def test_existence_column(self, fig3):
        """Exactly [B,A,C], [B,A,D], [B,A,[C,D]] exist in Q from u1."""
        query, _ = fig3
        present = twiglets_from(query.pattern, "u1", 3, query.alphabet)
        rendered = {t.render() for t in present}
        assert rendered == {"['B', 'A', 'C']", "['B', 'A', 'D']",
                            "['B', 'A', ['C', 'D']]"}


class TestEnumeration:
    def test_undirected_traversal(self, fig3):
        """Twiglets walk edges in either direction ((v_i, v_i+1) in E or
        reversed)."""
        query, _ = fig3
        # u5 -> u2 -> u1 uses two 'reversed' edges from u5's perspective.
        present = twiglets_from(query.pattern, "u5", 3, query.alphabet)
        assert any(t.path == ("'D'", "'A'", "'B'") for t in present)

    def test_ball_side_example8(self, fig3):
        """Example 8: [B,A,C] exists in G[v6,3]; [B,D,[A,C]] does not."""
        _, graph = fig3
        ball = extract_ball(graph, "v6", 3)
        present = twiglets_from(ball.graph, "v6", 3,
                                frozenset({"A", "B", "C", "D"}))
        rendered = {t.render() for t in present}
        assert "['B', 'A', 'C']" in rendered
        assert "['B', 'D', ['A', 'C']]" not in rendered

    def test_h4_superset_of_h3(self, fig3):
        _, graph = fig3
        ball = extract_ball(graph, "v6", 3)
        alphabet = frozenset({"A", "B", "C", "D"})
        h3 = twiglets_from(ball.graph, "v6", 3, alphabet)
        h4 = twiglets_from(ball.graph, "v6", 4, alphabet)
        assert h3 <= h4

    def test_alphabet_restriction(self, fig3):
        _, graph = fig3
        ball = extract_ball(graph, "v6", 3)
        restricted = twiglets_from(ball.graph, "v6", 3,
                                   frozenset({"A", "B"}))
        for t in restricted:
            assert set(t.path) <= {"'A'", "'B'"}

    def test_start_label_outside_alphabet_empty(self, fig3):
        _, graph = fig3
        assert twiglets_from(graph, "v6", 3, frozenset({"A", "C"})) == set()

    def test_h_below_3_rejected(self, fig3):
        query, _ = fig3
        with pytest.raises(ValueError):
            all_twiglet_shapes("B", query.alphabet, 2)


class TestTwigletTables:
    def test_tables_one_per_vertex_same_size(self, fig3, cgbe):
        query, _ = fig3
        tables = build_twiglet_tables(cgbe, query, 3)
        assert len(tables) == query.size
        assert len({len(t) for t in tables}) == 1  # summability condition

    def test_existence_encrypted_correctly(self, fig3, cgbe):
        query, _ = fig3
        tables = build_twiglet_tables(cgbe, query, 3)
        u1_table = next(t for t in tables if t.start_label == "B")
        present = twiglets_from(query.pattern, "u1", 3, query.alphabet)
        for key, ct in zip(u1_table.keys, u1_table.ciphertexts):
            has_q = cgbe.has_factor_q(ct)
            assert has_q == (key in present)

    def test_example8_prune_decision(self, fig3, cgbe):
        """Alg. 5 on ball G[v6, 3]: v6 matches u1, so not spurious."""
        query, graph = fig3
        ball = extract_ball(graph, "v6", 3, ball_id=1)
        tables = build_twiglet_tables(cgbe, query, 3)
        plan = table_plan(cgbe.params, len(tables[0]))
        features = twiglets_from(ball.graph, "v6", 3, query.alphabet)
        result = player_table_prune(cgbe.params, tables, ball, features,
                                    cgbe.encrypt_one(), plan)
        assert decide_positive(cgbe, result)

    def test_spurious_ball_detected(self, fig3, cgbe):
        """A ball centered at an A vertex that has none of u2's twiglets
        should be pruned."""
        query, graph = fig3
        ball = extract_ball(graph, "v4", 3, ball_id=2)
        tables = build_twiglet_tables(cgbe, query, 3)
        plan = table_plan(cgbe.params, len(tables[0]))
        features = twiglets_from(ball.graph, "v4", 3, query.alphabet)
        result = player_table_prune(cgbe.params, tables, ball, features,
                                    cgbe.encrypt_one(), plan)
        # Ground truth: can v4 be matched to u2 under hom? v4 lacks a D
        # predecessor-path context; compare against the real matcher.
        from repro.semantics.evaluate import ball_contains_match

        if not decide_positive(cgbe, result):
            assert not ball_contains_match(query, ball)

    def test_table_size_formula_matches_enumeration(self, fig3):
        query, _ = fig3
        for h in (3, 4):
            shapes = all_twiglet_shapes("B", query.alphabet, h)
            assert len(shapes) == twiglet_table_size(len(query.alphabet), h)
