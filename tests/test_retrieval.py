"""Tests for SSG / RSG secure sequence generation (Sec. 4.3)."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.retrieval import (
    positives_complete_positions,
    rsg_sequences,
    ssg_sequences,
)


class TestRSG:
    def test_partition_balanced(self):
        seqs = rsg_sequences(range(10), 3, seed=1)
        sizes = sorted(len(s) for s in seqs)
        assert sizes == [3, 3, 4]
        all_ids = [b for s in seqs for b in s.sequence]
        assert sorted(all_ids) == list(range(10))

    def test_no_scp(self):
        for seq in rsg_sequences(range(6), 2, seed=2):
            assert seq.scp is None

    def test_deterministic(self):
        a = rsg_sequences(range(20), 4, seed=7)
        b = rsg_sequences(range(20), 4, seed=7)
        assert [s.sequence for s in a] == [s.sequence for s in b]

    def test_k_validation(self):
        with pytest.raises(ValueError):
            rsg_sequences(range(3), 0)


class TestSSGEarlyCase:
    def test_example9_structure(self):
        """Example 9: |S| = 9, 3 positives, k = 3 -> SCP at position 2."""
        ids = list(range(1, 10))
        positives = {5, 6, 7}
        seqs, mode = ssg_sequences(ids, positives, 3, seed=5)
        assert mode == "early"
        for seq in seqs:
            assert len(seq) == 6  # 2 * |S| / k
            assert seq.scp == 2
        # Every positive's early copy lies in some front section, so the
        # Dealer holds all positives by each player's SCP (Example 9).
        for ball in positives:
            assert any(ball in s.sequence[:s.scp] for s in seqs)
        positions = positives_complete_positions(seqs, positives)
        assert all(p <= 2 for p in positions)

    def test_every_ball_evaluated_twice(self):
        ids = list(range(12))
        seqs, _ = ssg_sequences(ids, {0, 1}, 4, seed=3)
        counts = Counter(b for s in seqs for b in s.sequence)
        assert all(c == 2 for c in counts.values())
        assert set(counts) == set(ids)

    def test_all_positives_before_scp(self):
        ids = list(range(40))
        positives = set(range(0, 40, 7))
        seqs, mode = ssg_sequences(ids, positives, 4, seed=9)
        assert mode == "early"
        for seq in seqs:
            tail_positives = set(seq.sequence[seq.scp:]) & positives
            # A positive may appear in a tail only as a *dummy* copy; its
            # early copy must be in some player's front section.
            for ball in tail_positives:
                assert any(ball in s.sequence[:s.scp] for s in seqs)

    def test_no_positives_scp_zero(self):
        seqs, mode = ssg_sequences(range(8), (), 2, seed=1)
        assert mode == "early"
        assert all(s.scp == 0 for s in seqs)

    def test_front_mixes_negatives(self):
        """The SCP front must not be positives-only (that would reveal
        them): for y > positives-per-player, negatives fill the front."""
        ids = list(range(30))
        positives = set(range(3))
        seqs, _ = ssg_sequences(ids, positives, 2, seed=4)
        for seq in seqs:
            front = set(seq.sequence[:seq.scp])
            if front:
                assert front - positives  # at least one negative mixed in


class TestSSGNormalCase:
    def test_theta_at_least_half_degrades_to_rsg(self):
        ids = list(range(10))
        positives = set(range(5))  # theta = 0.5
        seqs, mode = ssg_sequences(ids, positives, 2, seed=2)
        assert mode == "normal"
        counts = Counter(b for s in seqs for b in s.sequence)
        assert all(c == 1 for c in counts.values())  # no dummies

    def test_empty_input(self):
        seqs, mode = ssg_sequences([], [], 3, seed=0)
        assert all(len(s) == 0 for s in seqs)


class TestValidation:
    def test_unknown_positive_rejected(self):
        with pytest.raises(ValueError, match="positives"):
            ssg_sequences([1, 2], [99], 2)

    def test_single_player_rejected(self):
        with pytest.raises(ValueError, match="two players"):
            ssg_sequences([1, 2], [1], 1)


class TestProperties:
    @given(st.integers(4, 60), st.data(), st.integers(2, 6),
           st.integers(0, 10 ** 6))
    @settings(max_examples=60, deadline=None)
    def test_ssg_invariants(self, n, data, k, seed):
        """SSG invariants from Sec. 4.3, for arbitrary inputs:
        every ball appears (positives always), per-player positives lie
        before the SCP, and in the early case the dummy sets tile S."""
        ids = list(range(n))
        positives = set(data.draw(st.sets(st.sampled_from(ids),
                                          max_size=n // 3)))
        seqs, mode = ssg_sequences(ids, positives, k, seed=seed)
        covered = {b for s in seqs for b in s.sequence}
        assert covered == set(ids)
        if mode == "early":
            for seq in seqs:
                front = set(seq.sequence[:seq.scp])
                early_half = set(seq.sequence[:len(seq) // 2 + len(seq) % 2])
                assert front <= set(seq.sequence)
            # Every positive is in some front section.
            for ball in positives:
                assert any(ball in s.sequence[:s.scp] for s in seqs)

    @given(st.integers(4, 40), st.integers(2, 5), st.integers(0, 10 ** 6))
    @settings(max_examples=40, deadline=None)
    def test_rsg_partition_property(self, n, k, seed):
        seqs = rsg_sequences(range(n), k, seed=seed)
        counts = Counter(b for s in seqs for b in s.sequence)
        assert all(c == 1 for c in counts.values())
        assert set(counts) == set(range(n))
        sizes = [len(s) for s in seqs]
        assert max(sizes) - min(sizes) <= 1
