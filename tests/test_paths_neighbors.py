"""Tests for the Path_h [57] and neighbor-label [17] pruning baselines."""

import pytest

from repro.core.aggregation import decide_positive
from repro.core.neighbors import (
    all_neighbor_shapes,
    build_neighbor_tables,
    neighbor_features,
    neighbor_table_size,
)
from repro.core.paths import (
    all_path_shapes,
    build_path_tables,
    path_table_size,
    paths_from,
)
from repro.core.table_pruning import player_table_prune, table_plan
from repro.core.twiglets import all_twiglet_shapes
from repro.graph.ball import extract_ball
from repro.graph.generators import fig3_query


class TestPathShapes:
    def test_paths_subset_of_twiglets(self, fig3):
        query, _ = fig3
        paths = set(all_path_shapes("B", query.alphabet, 3))
        twiglets = set(all_twiglet_shapes("B", query.alphabet, 3))
        assert paths < twiglets
        assert all(t.fork is None for t in paths)

    def test_table2_path_rows(self, fig3):
        query, _ = fig3
        rendered = {s.render() for s in all_path_shapes(
            "B", query.alphabet, 3)}
        assert rendered == {
            "['B', 'A', 'C']", "['B', 'A', 'D']", "['B', 'C', 'A']",
            "['B', 'C', 'D']", "['B', 'D', 'A']", "['B', 'D', 'C']"}

    def test_size_formula(self, fig3):
        query, _ = fig3
        assert len(all_path_shapes("B", query.alphabet, 3)) == \
            path_table_size(4, 3)
        assert len(all_path_shapes("B", query.alphabet, 4)) == \
            path_table_size(4, 4)

    def test_membership_fork_free(self, fig3):
        _, graph = fig3
        present = paths_from(graph, "v6", 3, frozenset("ABCD"))
        assert all(t.fork is None for t in present)

    def test_h_validation(self, fig3):
        query, _ = fig3
        with pytest.raises(ValueError):
            all_path_shapes("B", query.alphabet, 2)


class TestPathPruning:
    def test_weaker_or_equal_to_twiglets(self, fig3, cgbe):
        """Twiglets dominate paths in pruning power (Fig. 2a): any ball the
        paths prune, the twiglets prune too."""
        from repro.core.twiglets import build_twiglet_tables, twiglets_from

        query, graph = fig3
        path_tables = build_path_tables(cgbe, query, 3)
        twig_tables = build_twiglet_tables(cgbe, query, 3)
        p_plan = table_plan(cgbe.params, len(path_tables[0]))
        t_plan = table_plan(cgbe.params, len(twig_tables[0]))
        c_one = cgbe.encrypt_one()
        for center in graph.vertices():
            ball = extract_ball(graph, center, 3, ball_id=0)
            p_feat = paths_from(ball.graph, center, 3, query.alphabet)
            t_feat = twiglets_from(ball.graph, center, 3, query.alphabet)
            p_pos = decide_positive(cgbe, player_table_prune(
                cgbe.params, path_tables, ball, p_feat, c_one, p_plan))
            t_pos = decide_positive(cgbe, player_table_prune(
                cgbe.params, twig_tables, ball, t_feat, c_one, t_plan))
            assert t_pos <= p_pos  # twiglet positive => path positive


class TestNeighborFeatures:
    def test_fig3_v6_reachable_labels(self, fig3):
        _, graph = fig3
        features = neighbor_features(graph, "v6", hops=3)
        # Within 3 hops of v6: v2/v4 (A), v5/v7/v1 (C), v3 (D).
        assert features == {"'A'", "'C'", "'D'"}

    def test_hop_limit_respected(self, fig3):
        _, graph = fig3
        one_hop = neighbor_features(graph, "v6", hops=1)
        assert one_hop == {"'A'", "'C'"}  # D is two hops away

    def test_center_label_excluded(self, fig3):
        _, graph = fig3
        assert "'B'" not in neighbor_features(graph, "v6", hops=3)

    def test_shapes_are_alphabet(self, fig3):
        query, _ = fig3
        shapes = all_neighbor_shapes(query.alphabet, hops=3)
        assert len(shapes) == neighbor_table_size(4, 3) == 4

    def test_hops_validation(self, fig3):
        query, _ = fig3
        with pytest.raises(ValueError):
            all_neighbor_shapes(query.alphabet, hops=0)


class TestStrictDominance:
    def test_twiglet_prunes_a_ball_paths_cannot(self, cgbe):
        """The fork is what paths miss: a ball whose center reaches
        [B,A,C] and [B,A,D] through *different* A's satisfies every path
        of the Fig. 3 query but lacks the twiglet [B,A,[C,D]]."""
        from repro.core.twiglets import build_twiglet_tables, twiglets_from
        from repro.graph.labeled_graph import LabeledGraph

        query = fig3_query()
        labels = {"w": "B", "a1": "A", "a2": "A", "c": "C", "d": "D",
                  "c2": "C"}
        edges = [("a1", "w"), ("a2", "w"), ("c", "a1"), ("d", "a2"),
                 ("c2", "w")]
        g = LabeledGraph.from_edges(labels, edges)
        ball = extract_ball(g, "w", query.diameter, ball_id=0)

        c_one = cgbe.encrypt_one()
        path_tables = build_path_tables(cgbe, query, 3)
        p_plan = table_plan(cgbe.params, len(path_tables[0]))
        p_feat = paths_from(ball.graph, "w", 3, query.alphabet)
        p_pos = decide_positive(cgbe, player_table_prune(
            cgbe.params, path_tables, ball, p_feat, c_one, p_plan))

        twig_tables = build_twiglet_tables(cgbe, query, 3)
        t_plan = table_plan(cgbe.params, len(twig_tables[0]))
        t_feat = twiglets_from(ball.graph, "w", 3, query.alphabet)
        t_pos = decide_positive(cgbe, player_table_prune(
            cgbe.params, twig_tables, ball, t_feat, c_one, t_plan))

        assert p_pos and not t_pos  # strictly stronger (Fig. 2a)
        # And the twiglet decision is correct: the ball has no match.
        from repro.semantics.evaluate import ball_contains_match

        assert not ball_contains_match(query, ball)


class TestNeighborPruning:
    def test_sound_on_fig3(self, fig3, cgbe):
        """Neighbor pruning never prunes a ball that contains a match."""
        from repro.semantics.evaluate import ball_contains_match

        query, graph = fig3
        tables = build_neighbor_tables(cgbe, query)
        plan = table_plan(cgbe.params, len(tables[0]))
        c_one = cgbe.encrypt_one()
        for center in graph.vertices():
            ball = extract_ball(graph, center, query.diameter, ball_id=0)
            features = neighbor_features(ball.graph, center)
            positive = decide_positive(cgbe, player_table_prune(
                cgbe.params, tables, ball, features, c_one, plan))
            if ball_contains_match(query, ball):
                assert positive
