"""The persistent offline artifact store (:mod:`repro.storage.store`).

Contract under test: the store is a byte-faithful, staleness-checked,
tamper-evident persistence of the data owner's offline outsourcing
output -- an engine served from it must answer exactly like an engine
that recomputed everything.
"""

import shutil

import pytest

from repro.core.bf_pruning import BFConfig
from repro.core.twiglets import filter_twiglets, twiglets_from
from repro.crypto.keys import DataOwnerKey
from repro.framework.prilo_star import PriloStar
from repro.graph.ball import BallIndex
from repro.graph.io import graph_from_json, graph_to_json
from repro.storage import (
    ArtifactStore,
    StoreError,
    graph_digest,
    key_digest,
)

RADII = (2,)
SEED = 3  # matches test_config so store key == engine owner key


@pytest.fixture(scope="module")
def graph(dataset):
    return dataset.graph


@pytest.fixture(scope="module")
def key():
    return DataOwnerKey.generate(SEED)


@pytest.fixture(scope="module")
def store(tmp_path_factory, graph, key):
    root = tmp_path_factory.mktemp("artifact-store") / "store"
    return ArtifactStore.create(
        root, graph, RADII, key, twiglet_h=3,
        bf_config=BFConfig(eta=16, expected_trees=200))


class TestRoundtrip:
    def test_balls_roundtrip(self, store, graph):
        index = BallIndex(graph, RADII)
        for center in list(graph.vertices())[:20]:
            original = index.ball(center, RADII[0])
            loaded = store.load_ball(original.ball_id)
            assert loaded.ball_id == original.ball_id
            assert loaded.center == original.center
            assert loaded.radius == original.radius
            assert set(loaded.graph.vertices()) == set(
                original.graph.vertices())
            assert set(loaded.graph.edges()) == set(original.graph.edges())

    def test_encrypted_blobs_authenticate(self, store, graph, key):
        from repro.graph.io import ball_from_bytes

        cipher = key.cipher()
        ball_id = store.ball_ids()[0]
        payload = cipher.decrypt(store.load_encrypted(ball_id))
        assert ball_from_bytes(payload).ball_id == ball_id

    def test_open_equals_create(self, store, graph):
        reopened = ArtifactStore.open(store.root)
        assert reopened.radii == RADII
        assert reopened.twiglet_h == 3
        assert len(reopened) == len(store)
        assert reopened.ball_ids() == store.ball_ids()

    def test_describe(self, store, graph):
        info = store.describe()
        assert info["balls"] == len(list(graph.vertices())) * len(RADII)
        assert info["radii"] == list(RADII)
        assert info["graph_digest"] == graph_digest(graph)

    def test_create_refuses_nonempty_root(self, store, graph, key):
        with pytest.raises(StoreError, match="non-empty"):
            ArtifactStore.create(store.root, graph, RADII, key)


class TestStaleness:
    def test_fresh_store_passes(self, store, graph, key):
        store.check(graph=graph, radii=RADII, key=key)

    def test_graph_digest_mismatch(self, store, graph, key):
        modified = graph_from_json(graph_to_json(graph))
        modified.add_vertex("phantom-vertex", "A")
        assert graph_digest(modified) != graph_digest(graph)
        with pytest.raises(StoreError, match="graph"):
            store.check(graph=modified, radii=RADII, key=key)

    def test_wrong_key(self, store, graph):
        other = DataOwnerKey.generate(SEED + 1)
        assert key_digest(other) != store._manifest["key_digest"]
        with pytest.raises(StoreError, match="key"):
            store.check(graph=graph, key=other)

    def test_radii_mismatch(self, store, graph, key):
        with pytest.raises(StoreError, match="radii"):
            store.check(graph=graph, radii=(1, 2), key=key)

    def test_engine_setup_rejects_stale_store(self, store, dataset,
                                              test_config):
        from dataclasses import replace

        # test_config radii (1, 2, 3) != store radii (2,) -- the check
        # runs at DataOwner construction, before any query.
        with pytest.raises(StoreError, match="radii"):
            PriloStar.setup(dataset.graph, test_config, store=store)
        # Matching radii but a different owner seed: key mismatch.
        with pytest.raises(StoreError, match="key"):
            PriloStar.setup(dataset.graph,
                            replace(test_config, radii=RADII, seed=SEED + 1),
                            store=store)


class TestTamperDetection:
    @pytest.fixture()
    def copy(self, store, tmp_path):
        root = tmp_path / "copy"
        shutil.copytree(store.root, root)
        return root

    def test_verify_clean(self, store, key):
        report = store.verify(key)
        assert report.ok
        assert report.balls == len(store)
        assert report.decrypted == len(store)
        assert {p.status for p in report.packs} == {"ok"}
        assert len(report.packs) == 4

    @pytest.mark.parametrize("filename", ["balls.pack", "encrypted.pack",
                                          "twiglets.json"])
    def test_flipped_byte_detected(self, copy, filename):
        path = copy / filename
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        report = ArtifactStore.open(copy).verify()
        assert not report.ok
        bad = {p.name for p in report.tampered}
        assert bad == {filename}
        assert "checksum" in report.tampered[0].reason

    def test_flipped_byte_reports_all_files(self, copy):
        """Unlike the old first-failure raise, every damaged artifact is
        reported in one sweep."""
        for filename in ("balls.pack", "twiglets.json"):
            path = copy / filename
            data = bytearray(path.read_bytes())
            data[len(data) // 2] ^= 0xFF
            path.write_bytes(bytes(data))
        report = ArtifactStore.open(copy).verify()
        assert {p.name for p in report.tampered} == {"balls.pack",
                                                     "twiglets.json"}

    def test_blob_swap_detected_with_key(self, copy, key):
        """Swapping two same-length ciphertexts defeats per-file hashes
        only if the manifest checksum is recomputed -- the keyed sweep
        still catches it because decryption is authenticated per blob."""
        tampered = ArtifactStore.open(copy)
        ids = tampered.ball_ids()
        blobs = {i: tampered.load_encrypted(i) for i in ids[:10]}
        a, b = sorted(blobs, key=lambda i: len(blobs[i]))[:2]
        pack = bytearray((copy / "encrypted.pack").read_bytes())
        sl = {i: tampered._slices[i] for i in (a, b)}
        pack[sl[a].enc_offset:sl[a].enc_offset + len(blobs[b])] = blobs[b]
        (copy / "encrypted.pack").write_bytes(bytes(pack))
        import hashlib
        import json
        manifest = json.loads((copy / "manifest.json").read_text())
        manifest["checksums"]["encrypted.pack"] = hashlib.sha256(
            bytes(pack)).hexdigest()
        (copy / "manifest.json").write_text(json.dumps(manifest))
        report = ArtifactStore.open(copy).verify(key)
        assert not report.ok
        assert {p.name for p in report.tampered} == {"encrypted.pack"}
        assert "keyed sweep" in report.tampered[0].reason

    def test_stale_key_reported_not_fatal(self, copy):
        """A wrong owner key is staleness (rebuild with the right key),
        not tampering -- and the keyed sweep is skipped, not failed."""
        from repro.crypto.keys import DataOwnerKey

        report = ArtifactStore.open(copy).verify(DataOwnerKey.generate(999))
        assert not report.ok
        assert not report.tampered
        assert report.stale
        assert report.decrypted == 0


class TestServingEquivalence:
    def test_store_ball_index_id_parity(self, store, graph):
        fresh = BallIndex(graph, RADII)
        backed = store.ball_index(graph)
        for center in list(graph.vertices())[:20]:
            assert (backed.ball(center, RADII[0]).ball_id
                    == fresh.ball(center, RADII[0]).ball_id)

    def test_twiglet_filter_equivalence(self, store, graph):
        """Stored full-alphabet twiglets filtered to a query alphabet must
        equal recomputing twiglets against that alphabet directly."""
        features = store.twiglet_features()
        index = BallIndex(graph, RADII)
        alphabet = frozenset(list(graph.alphabet)[:4])
        for center in list(graph.vertices())[:20]:
            ball = index.ball(center, RADII[0])
            assert (filter_twiglets(features[ball.ball_id], alphabet)
                    == twiglets_from(ball.graph, ball.center, 3, alphabet))

    def test_store_backed_engine_answers_identically(self, store, dataset,
                                                     test_config):
        from dataclasses import replace

        config = replace(test_config, radii=RADII, seed=SEED)
        query = dataset.random_queries(1, size=4, diameter=2, seed=21)[0]
        plain = PriloStar.setup(dataset.graph, config).run(query)
        backed = PriloStar.setup(dataset.graph, config, store=store).run(query)
        assert backed.candidate_ids == plain.candidate_ids
        assert backed.pm_positive_ids == plain.pm_positive_ids
        assert backed.verified_ids == plain.verified_ids
        assert backed.match_ball_ids == plain.match_ball_ids
        assert backed.pm_per_method == plain.pm_per_method
