"""Tests for the LDBC-like workload (Table 5, Sec. 6.4)."""

import pytest

from repro.graph.ldbc import (
    TESTED_WORKLOADS,
    WORKLOAD_SHAPES,
    instantiate_workload,
    ldbc_like_graph,
    workload_queries,
)
from repro.graph.query import Semantics


@pytest.fixture(scope="module")
def graph():
    return ldbc_like_graph(num_vertices=600, num_labels=40, seed=3)


class TestTable5:
    def test_twenty_rows_ten_tested(self):
        assert len(WORKLOAD_SHAPES) == 20
        assert len(TESTED_WORKLOADS) == 10
        assert [s.name for s in TESTED_WORKLOADS] == [
            "Q3", "Q4", "Q5", "Q6", "Q9", "Q11", "Q12", "Q13", "Q15", "Q19"]

    def test_tested_shapes_match_table_characteristics(self):
        by_name = {s.name: s for s in WORKLOAD_SHAPES}
        # Spot-check the table rows.
        assert (by_name["Q3"].num_vertices, by_name["Q3"].num_labels,
                by_name["Q3"].diameter) == (4, 4, 3)
        assert by_name["Q11"].remark.startswith("triangle")
        assert by_name["Q13"].remark.startswith("twig")
        assert by_name["Q19"].remark.startswith("circle")

    def test_tested_shapes_have_consistent_edge_lists(self):
        for shape in TESTED_WORKLOADS:
            vertices = {v for e in shape.edges for v in e}
            assert vertices == set(range(shape.num_vertices))

    def test_omitted_reasons_recorded(self):
        by_name = {s.name: s for s in WORKLOAD_SHAPES}
        assert "negation" in by_name["Q7"].remark
        assert "non-localized" in by_name["Q10"].remark


class TestInstantiation:
    def test_instantiated_query_matches_shape(self, graph):
        shape = TESTED_WORKLOADS[0]  # Q3
        q = instantiate_workload(shape, graph, seed=1)
        assert q.size == shape.num_vertices
        assert len(q.alphabet) == shape.num_labels
        assert q.diameter == shape.diameter

    def test_labels_come_from_graph(self, graph):
        q = instantiate_workload(TESTED_WORKLOADS[2], graph, seed=2)
        assert q.alphabet <= graph.alphabet

    def test_omitted_workload_rejected(self, graph):
        omitted = next(s for s in WORKLOAD_SHAPES if not s.tested)
        with pytest.raises(ValueError, match="omitted"):
            instantiate_workload(omitted, graph)

    def test_workload_queries_all_ten(self, graph):
        queries = workload_queries(graph, Semantics.SSIM, seed=4)
        assert set(queries) == {s.name for s in TESTED_WORKLOADS}
        assert all(q.semantics is Semantics.SSIM for q in queries.values())

    def test_small_alphabet_rejected(self):
        tiny = ldbc_like_graph(num_vertices=60, num_labels=2, seed=1)
        shape = next(s for s in TESTED_WORKLOADS if s.num_labels >= 3)
        with pytest.raises(ValueError, match="alphabet"):
            instantiate_workload(shape, tiny)


class TestLdbcGraph:
    def test_shape(self, graph):
        assert graph.num_vertices == 600
        assert len(graph.alphabet) <= 40

    def test_label_skew(self, graph):
        """Zipf labels: the most popular label dominates the rarest."""
        freqs = sorted((graph.label_frequency(l) for l in graph.alphabet),
                       reverse=True)
        assert freqs[0] >= 5 * max(freqs[-1], 1) or freqs[0] > 30
