"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_commands_registered(self):
        parser = build_parser()
        for argv in (["stats", "dblp"],
                     ["run", "dblp"],
                     ["workloads"],
                     ["prune", "dblp"]):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_unknown_dataset_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["stats", "nope"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_stats(self, capsys):
        assert main(["--scale", "0.05", "stats", "dblp"]) == 0
        out = capsys.readouterr().out
        assert "vertices" in out

    def test_run(self, capsys):
        assert main(["--scale", "0.08", "--players", "2",
                     "run", "dblp", "--size", "4", "--diameter", "2"]) == 0
        out = capsys.readouterr().out
        assert "candidates:" in out
        assert "sequence mode" in out

    def test_prune(self, capsys):
        assert main(["--scale", "0.08", "--players", "2", "prune", "dblp",
                     "--queries", "1", "--size", "4",
                     "--diameter", "2"]) == 0
        out = capsys.readouterr().out
        assert "twiglet" in out
