"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import (
    EXIT_DEADLINE,
    EXIT_INTEGRITY,
    EXIT_LEAKAGE,
    EXIT_STALE,
    build_parser,
    combine_exit,
    main,
)


class TestParser:
    def test_commands_registered(self):
        parser = build_parser()
        for argv in (["stats", "dblp"],
                     ["run", "dblp"],
                     ["workloads"],
                     ["prune", "dblp"],
                     ["serve-batch", "dblp"],
                     ["store", "build", "dblp", "/tmp/x"],
                     ["store", "inspect", "/tmp/x"],
                     ["store", "verify", "/tmp/x"]):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_unknown_dataset_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["stats", "nope"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_stats(self, capsys):
        assert main(["--scale", "0.05", "stats", "dblp"]) == 0
        out = capsys.readouterr().out
        assert "vertices" in out

    def test_run(self, capsys):
        assert main(["--scale", "0.08", "--players", "2",
                     "run", "dblp", "--size", "4", "--diameter", "2"]) == 0
        out = capsys.readouterr().out
        assert "candidates:" in out
        assert "sequence mode" in out

    def test_prune(self, capsys):
        assert main(["--scale", "0.08", "--players", "2", "prune", "dblp",
                     "--queries", "1", "--size", "4",
                     "--diameter", "2"]) == 0
        out = capsys.readouterr().out
        assert "twiglet" in out

    def test_serve_batch(self, capsys):
        assert main(["--scale", "0.05", "--modulus", "512", "serve-batch",
                     "slashdot", "--batch", "3", "--distinct", "2",
                     "--size", "4", "--diameter", "2"]) == 0
        out = capsys.readouterr().out
        assert "served 3 queries" in out
        assert "CMM cache:" in out

    def test_run_chaos_mode(self, capsys):
        """``--chaos-seed`` injects faults yet the run still succeeds and
        reports what happened."""
        assert main(["--scale", "0.08", "--players", "2", "run", "dblp",
                     "--size", "4", "--diameter", "2",
                     "--chaos-seed", "7", "--fault-rate", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "matches:" in out
        assert "faults:" in out
        assert "injected=" in out

    def test_chaos_results_match_fault_free(self, capsys):
        argv = ["--scale", "0.08", "--players", "2", "run", "dblp",
                "--size", "4", "--diameter", "2"]
        assert main(argv) == 0
        clean = capsys.readouterr().out
        assert main([*argv, "--chaos-seed", "3", "--fault-rate", "0.25"]) == 0
        chaotic = capsys.readouterr().out

        def matches(out: str) -> str:
            # degradation may change intermediate counts (e.g. BF-less
            # PM-positives) but never the answer
            return out.split("matches: ")[1].split()[0]

        assert matches(chaotic) == matches(clean)


class TestExitCodeLattice:
    """One precedence order for every command, documented in
    docs/operations.md: ``0 < 2 (stale) < 4 (deadline) < 5 (leakage)
    < 3 (integrity) < 1 (generic)``, unknown codes most severe."""

    def test_identity_and_zero(self):
        assert combine_exit() == 0
        assert combine_exit(0) == 0
        assert combine_exit(0, 0, 0) == 0

    def test_total_order(self):
        lattice = [0, EXIT_STALE, EXIT_DEADLINE, EXIT_LEAKAGE,
                   EXIT_INTEGRITY, 1]
        for i, low in enumerate(lattice):
            for high in lattice[i:]:
                assert combine_exit(low, high) == high
                assert combine_exit(high, low) == high

    def test_integrity_wins_over_leakage(self):
        # Tampered evidence invalidates the very trace a leakage verdict
        # was computed from: exit 3 must win so "rerun the audit" scripts
        # never trust a trace from a corrupt run.
        assert combine_exit(EXIT_LEAKAGE, EXIT_INTEGRITY) == EXIT_INTEGRITY

    def test_unknown_codes_most_severe(self):
        assert combine_exit(1, 7) == 7
        assert combine_exit(EXIT_INTEGRITY, 42) == 42


class TestTracing:
    BASE = ["--scale", "0.08", "--players", "2"]
    RUN = ["run", "dblp", "--size", "4", "--diameter", "2"]

    def test_run_traced_exits_zero_and_writes_jsonl(self, tmp_path,
                                                    capsys):
        trace = tmp_path / "run.jsonl"
        assert main([*self.BASE, *self.RUN, "--trace", str(trace),
                     "--leakage-audit"]) == 0
        out = capsys.readouterr().out
        assert "leakage-audit: ok" in out
        assert trace.exists()

        from repro.observability import read_trace
        meta, spans = read_trace(trace)
        assert meta["format"] == 1
        assert meta["spans"] == len(spans) > 0
        roles = {s["role"] for s in spans}
        assert "user" in roles and "dealer" in roles

    def test_taint_hook_fails_audit_with_exit_5(self, tmp_path, capsys):
        trace = tmp_path / "tainted.jsonl"
        assert main([*self.BASE, *self.RUN, "--trace", str(trace),
                     "--leakage-audit", "--trace-taint"]) == EXIT_LEAKAGE
        out = capsys.readouterr().out
        assert "LEAKAGE" in out
        assert "ball_answer" in out

    def test_trace_summarize_and_offline_audit(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert main([*self.BASE, *self.RUN, "--trace", str(trace)]) == 0
        capsys.readouterr()

        assert main(["trace", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "[user]" in out
        assert "spans" in out

        assert main(["trace", "audit", str(trace)]) == 0
        assert "leakage-audit: ok" in capsys.readouterr().out

    def test_offline_audit_flags_tainted_trace(self, tmp_path, capsys):
        trace = tmp_path / "tainted.jsonl"
        assert main([*self.BASE, *self.RUN, "--trace", str(trace),
                     "--trace-taint"]) == 0  # no live audit requested
        capsys.readouterr()
        assert main(["trace", "audit", str(trace)]) == EXIT_LEAKAGE
        assert "LEAKAGE" in capsys.readouterr().out

    def test_trace_commands_reject_missing_file(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.jsonl")
        assert main(["trace", "summarize", missing]) == 1
        assert main(["trace", "audit", missing]) == 1

    def test_serve_batch_metrics_out(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.prom"
        assert main(["--scale", "0.05", "--modulus", "512", "serve-batch",
                     "slashdot", "--batch", "3", "--distinct", "2",
                     "--size", "4", "--diameter", "2",
                     "--metrics-out", str(metrics)]) == 0
        text = metrics.read_text()
        assert "# TYPE repro_batch_queries_total counter" in text
        assert "repro_batch_queries_total 3" in text
        assert "repro_message_bytes_total" in text


class TestStoreCommands:
    BASE = ["--scale", "0.05", "--modulus", "512"]

    @pytest.fixture(scope="class")
    def store_root(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("cli-store") / "artifacts"
        assert main([*self.BASE, "store", "build", "slashdot", str(root),
                     "--radii", "1,2", "--no-bf"]) == 0
        return root

    def test_build_then_inspect(self, store_root, capsys):
        capsys.readouterr()
        assert main(["store", "inspect", str(store_root)]) == 0
        out = capsys.readouterr().out
        assert '"balls": 400' in out
        assert '"radii"' in out

    def test_verify(self, store_root, capsys):
        assert main([*self.BASE, "store", "verify", str(store_root)]) == 0
        assert main([*self.BASE, "store", "verify", str(store_root),
                     "--with-key"]) == 0
        out = capsys.readouterr().out
        assert "decrypt-authenticated" in out
        assert "ok: store verified" in out

    def test_verify_detects_tamper(self, store_root, tmp_path, capsys):
        import shutil

        copy = tmp_path / "tampered"
        shutil.copytree(store_root, copy)
        pack = copy / "balls.pack"
        data = bytearray(pack.read_bytes())
        data[len(data) // 2] ^= 0xFF
        pack.write_bytes(bytes(data))
        assert main(["store", "verify", str(copy)]) == 3
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "balls.pack: tampered" in out

    def test_verify_stale_key_exits_2(self, store_root, capsys):
        # verifying with a key derived from a different seed makes the
        # store stale (built under a different owner key) -> exit 2
        assert main([*self.BASE, "--seed", "1", "store", "verify",
                     str(store_root), "--with-key"]) == 2
        out = capsys.readouterr().out
        assert "STALE" in out
        assert "different owner key" in out

    def test_verify_tampered_wins_over_stale(self, store_root, tmp_path,
                                             capsys):
        # combined stale + tampered: the integrity failure must take
        # precedence, so scripts keying off exit 2 for "just rebuild"
        # never miss an active tamper -> exit 3, both surfaced in output
        import shutil

        copy = tmp_path / "stale-and-tampered"
        shutil.copytree(store_root, copy)
        pack = copy / "balls.pack"
        data = bytearray(pack.read_bytes())
        data[len(data) // 2] ^= 0xFF
        pack.write_bytes(bytes(data))
        assert main([*self.BASE, "--seed", "1", "store", "verify",
                     str(copy), "--with-key"]) == 3
        out = capsys.readouterr().out
        assert "balls.pack: tampered" in out
        assert "manifest.json: stale" in out
        assert "FAILED" in out

    def test_run_with_store(self, store_root, capsys):
        assert main([*self.BASE, "run", "slashdot", "--size", "4",
                     "--diameter", "2", "--store", str(store_root)]) == 0
        out = capsys.readouterr().out
        assert "candidates:" in out

    def test_serve_batch_with_store(self, store_root, capsys):
        assert main([*self.BASE, "serve-batch", "slashdot", "--batch", "4",
                     "--distinct", "2", "--size", "4", "--diameter", "2",
                     "--store", str(store_root)]) == 0
        out = capsys.readouterr().out
        assert "served 4 queries" in out
        assert "hit rate" in out
