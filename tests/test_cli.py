"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_commands_registered(self):
        parser = build_parser()
        for argv in (["stats", "dblp"],
                     ["run", "dblp"],
                     ["workloads"],
                     ["prune", "dblp"],
                     ["serve-batch", "dblp"],
                     ["store", "build", "dblp", "/tmp/x"],
                     ["store", "inspect", "/tmp/x"],
                     ["store", "verify", "/tmp/x"]):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_unknown_dataset_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["stats", "nope"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_stats(self, capsys):
        assert main(["--scale", "0.05", "stats", "dblp"]) == 0
        out = capsys.readouterr().out
        assert "vertices" in out

    def test_run(self, capsys):
        assert main(["--scale", "0.08", "--players", "2",
                     "run", "dblp", "--size", "4", "--diameter", "2"]) == 0
        out = capsys.readouterr().out
        assert "candidates:" in out
        assert "sequence mode" in out

    def test_prune(self, capsys):
        assert main(["--scale", "0.08", "--players", "2", "prune", "dblp",
                     "--queries", "1", "--size", "4",
                     "--diameter", "2"]) == 0
        out = capsys.readouterr().out
        assert "twiglet" in out

    def test_serve_batch(self, capsys):
        assert main(["--scale", "0.05", "--modulus", "512", "serve-batch",
                     "slashdot", "--batch", "3", "--distinct", "2",
                     "--size", "4", "--diameter", "2"]) == 0
        out = capsys.readouterr().out
        assert "served 3 queries" in out
        assert "CMM cache:" in out

    def test_run_chaos_mode(self, capsys):
        """``--chaos-seed`` injects faults yet the run still succeeds and
        reports what happened."""
        assert main(["--scale", "0.08", "--players", "2", "run", "dblp",
                     "--size", "4", "--diameter", "2",
                     "--chaos-seed", "7", "--fault-rate", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "matches:" in out
        assert "faults:" in out
        assert "injected=" in out

    def test_chaos_results_match_fault_free(self, capsys):
        argv = ["--scale", "0.08", "--players", "2", "run", "dblp",
                "--size", "4", "--diameter", "2"]
        assert main(argv) == 0
        clean = capsys.readouterr().out
        assert main([*argv, "--chaos-seed", "3", "--fault-rate", "0.25"]) == 0
        chaotic = capsys.readouterr().out

        def matches(out: str) -> str:
            # degradation may change intermediate counts (e.g. BF-less
            # PM-positives) but never the answer
            return out.split("matches: ")[1].split()[0]

        assert matches(chaotic) == matches(clean)


class TestStoreCommands:
    BASE = ["--scale", "0.05", "--modulus", "512"]

    @pytest.fixture(scope="class")
    def store_root(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("cli-store") / "artifacts"
        assert main([*self.BASE, "store", "build", "slashdot", str(root),
                     "--radii", "1,2", "--no-bf"]) == 0
        return root

    def test_build_then_inspect(self, store_root, capsys):
        capsys.readouterr()
        assert main(["store", "inspect", str(store_root)]) == 0
        out = capsys.readouterr().out
        assert '"balls": 400' in out
        assert '"radii"' in out

    def test_verify(self, store_root, capsys):
        assert main([*self.BASE, "store", "verify", str(store_root)]) == 0
        assert main([*self.BASE, "store", "verify", str(store_root),
                     "--with-key"]) == 0
        out = capsys.readouterr().out
        assert "decrypt-authenticated" in out
        assert "ok: store verified" in out

    def test_verify_detects_tamper(self, store_root, tmp_path, capsys):
        import shutil

        copy = tmp_path / "tampered"
        shutil.copytree(store_root, copy)
        pack = copy / "balls.pack"
        data = bytearray(pack.read_bytes())
        data[len(data) // 2] ^= 0xFF
        pack.write_bytes(bytes(data))
        assert main(["store", "verify", str(copy)]) == 3
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "balls.pack: tampered" in out

    def test_verify_stale_key_exits_2(self, store_root, capsys):
        # verifying with a key derived from a different seed makes the
        # store stale (built under a different owner key) -> exit 2
        assert main([*self.BASE, "--seed", "1", "store", "verify",
                     str(store_root), "--with-key"]) == 2
        out = capsys.readouterr().out
        assert "STALE" in out
        assert "different owner key" in out

    def test_verify_tampered_wins_over_stale(self, store_root, tmp_path,
                                             capsys):
        # combined stale + tampered: the integrity failure must take
        # precedence, so scripts keying off exit 2 for "just rebuild"
        # never miss an active tamper -> exit 3, both surfaced in output
        import shutil

        copy = tmp_path / "stale-and-tampered"
        shutil.copytree(store_root, copy)
        pack = copy / "balls.pack"
        data = bytearray(pack.read_bytes())
        data[len(data) // 2] ^= 0xFF
        pack.write_bytes(bytes(data))
        assert main([*self.BASE, "--seed", "1", "store", "verify",
                     str(copy), "--with-key"]) == 3
        out = capsys.readouterr().out
        assert "balls.pack: tampered" in out
        assert "manifest.json: stale" in out
        assert "FAILED" in out

    def test_run_with_store(self, store_root, capsys):
        assert main([*self.BASE, "run", "slashdot", "--size", "4",
                     "--diameter", "2", "--store", str(store_root)]) == 0
        out = capsys.readouterr().out
        assert "candidates:" in out

    def test_serve_batch_with_store(self, store_root, capsys):
        assert main([*self.BASE, "serve-batch", "slashdot", "--batch", "4",
                     "--distinct", "2", "--size", "4", "--diameter", "2",
                     "--store", str(store_root)]) == 0
        out = capsys.readouterr().out
        assert "served 4 queries" in out
        assert "hit rate" in out
