"""Tests for adjacency matrices and candidate mapping matrices (Def. 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import fig3_graph, fig3_query, power_law_graph
from repro.graph.matrix import (
    CandidateMappingMatrix,
    adjacency_matrix,
    vertex_order,
)


class TestAdjacencyMatrix:
    def test_fig3_query_matrix(self):
        q = fig3_query()
        m = adjacency_matrix(q.pattern, q.vertex_order)
        # Edges: (u2,u1), (u3,u1), (u4,u2), (u5,u2) at rows 1,2,3,4.
        expected = np.zeros((5, 5), dtype=np.uint8)
        expected[1, 0] = expected[2, 0] = 1
        expected[3, 1] = expected[4, 1] = 1
        assert (m == expected).all()

    def test_duplicate_order_rejected(self):
        q = fig3_query()
        with pytest.raises(ValueError, match="duplicates"):
            adjacency_matrix(q.pattern, ("u1", "u1", "u2", "u3", "u4"))

    def test_default_order_deterministic(self):
        g = fig3_graph()
        assert vertex_order(g) == tuple(sorted(g.vertices()))


class TestCMM:
    def cmm(self):
        # The paper's Example 3 CMM.
        return CandidateMappingMatrix(
            query_order=("u1", "u2", "u3", "u4", "u5"),
            assignment=("v6", "v2", "v5", "v5", "v3"))

    def test_dense_one_hot(self):
        g = fig3_graph()
        order = vertex_order(g)
        dense = self.cmm().dense(order)
        assert dense.shape == (5, 7)
        assert (dense.sum(axis=1) == 1).all()
        # Example 3: C(u1, v6) = 1.
        assert dense[0, order.index("v6")] == 1

    def test_projection_matches_example5(self):
        """M_p rows of Example 5."""
        g = fig3_graph()
        proj = self.cmm().project(g)
        expected = np.zeros((5, 5), dtype=np.uint8)
        expected[1, 0] = 1               # M_p(u2) = (1,0,0,0,0)
        expected[2, 0] = expected[2, 1] = 1  # M_p(u3) = (1,1,0,0,0)
        expected[3, 0] = expected[3, 1] = 1  # M_p(u4)
        expected[4, 1] = 1               # M_p(u5) = (0,1,0,0,0)
        assert (proj == expected).all()

    def test_projection_shortcut_equals_dense_product(self):
        """The one-hot shortcut equals the literal C . M . C^T."""
        g = fig3_graph()
        cmm = self.cmm()
        assert (cmm.project(g) == cmm.project_dense(g)).all()

    def test_mapping_dict(self):
        assert self.cmm().mapping()["u3"] == "v5"

    def test_uses(self):
        assert self.cmm().uses("v6")
        assert not self.cmm().uses("v7")

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CandidateMappingMatrix(query_order=("a", "b"),
                                   assignment=("x",))

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=30, deadline=None)
    def test_projection_equivalence_random(self, seed):
        """Property: shortcut == dense algebra on random graphs/CMMs."""
        import random

        rng = random.Random(seed)
        g = power_law_graph(30, 2, 4, seed=seed % 97)
        order = vertex_order(g)
        rows = tuple(f"q{i}" for i in range(4))
        assignment = tuple(rng.choice(order) for _ in rows)
        cmm = CandidateMappingMatrix(query_order=rows, assignment=assignment)
        assert (cmm.project(g) == cmm.project_dense(g, order)).all()
