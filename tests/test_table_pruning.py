"""Tests for the generic encrypted-table pruning machinery."""

import pytest

from repro.core.aggregation import decide_positive
from repro.core.table_pruning import (
    PruneTable,
    build_table,
    player_table_prune,
    table_plan,
)
from repro.graph.ball import extract_ball
from repro.graph.generators import fig3_graph


@pytest.fixture()
def ball():
    return extract_ball(fig3_graph(), "v6", 2, ball_id=3)


class TestBuildTable:
    def test_existence_column(self, cgbe):
        table = build_table(cgbe, "B", ["k1", "k2", "k3"], {"k2"})
        assert table.start_label == "B"
        assert cgbe.has_factor_q(table.ciphertexts[1])
        assert not cgbe.has_factor_q(table.ciphertexts[0])
        assert not cgbe.has_factor_q(table.ciphertexts[2])
        assert len(table) == 3

    def test_mismatched_lengths_rejected(self, cgbe):
        with pytest.raises(ValueError):
            PruneTable(start_label="B", keys=("a",), ciphertexts=[])


class TestPlayerPrune:
    def test_only_center_label_tables_participate(self, cgbe, ball):
        """Tables with non-matching start labels are skipped (Alg. 5 l.4);
        the verdict comes from the 'B' table alone."""
        plan = table_plan(cgbe.params, 2)
        c_one = cgbe.encrypt_one()
        # 'B' table: a required feature the ball lacks -> spurious.
        b_table = build_table(cgbe, "B", ["f1", "f2"], {"f1"})
        # 'A' table: everything fine, but the center is 'B'.
        a_table = build_table(cgbe, "A", ["f1", "f2"], set())
        result = player_table_prune(cgbe.params, [a_table, b_table], ball,
                                    ball_features=set(), c_one=c_one,
                                    plan=plan)
        assert not decide_positive(cgbe, result)

    def test_feature_present_neutralizes(self, cgbe, ball):
        plan = table_plan(cgbe.params, 2)
        c_one = cgbe.encrypt_one()
        b_table = build_table(cgbe, "B", ["f1", "f2"], {"f1"})
        result = player_table_prune(cgbe.params, [b_table], ball,
                                    ball_features={"f1"}, c_one=c_one,
                                    plan=plan)
        assert decide_positive(cgbe, result)

    def test_any_matching_vertex_keeps_ball(self, cgbe, ball):
        """Two 'B' tables (two query vertices with the center's label):
        the ball survives if either can still match (Prop. 4)."""
        plan = table_plan(cgbe.params, 1)
        c_one = cgbe.encrypt_one()
        violating = build_table(cgbe, "B", ["f"], {"f"})
        satisfied = build_table(cgbe, "B", ["f"], set())
        result = player_table_prune(cgbe.params, [violating, satisfied],
                                    ball, ball_features=set(), c_one=c_one,
                                    plan=plan)
        assert decide_positive(cgbe, result)

    def test_no_matching_table_is_spurious(self, cgbe, ball):
        plan = table_plan(cgbe.params, 1)
        a_table = build_table(cgbe, "A", ["f"], set())
        result = player_table_prune(cgbe.params, [a_table], ball,
                                    ball_features=set(),
                                    c_one=cgbe.encrypt_one(), plan=plan)
        assert result.empty
        assert not decide_positive(cgbe, result)

    def test_summed_result_single_ciphertext(self, cgbe, ball):
        plan = table_plan(cgbe.params, 4)
        tables = [build_table(cgbe, "B", list("wxyz"), set())
                  for _ in range(3)]
        result = player_table_prune(cgbe.params, tables, ball,
                                    ball_features=set(),
                                    c_one=cgbe.encrypt_one(), plan=plan)
        assert result.ciphertext_count() == 1
