"""Tests for the query-oblivious ssim verification."""

from repro.core.encoding import encrypt_query_matrix
from repro.core.ssim_verification import (
    decide_ssim_ball,
    ssim_plan,
    ssim_verify_ball,
)
from repro.graph.ball import extract_ball
from repro.graph.generators import social_graph
from repro.graph.qgen import QGen
from repro.graph.query import QueryLabelView, Semantics
from repro.semantics.ssim import strong_simulation


class TestSsimVerification:
    def test_fig3_positive_ball(self, fig3, cgbe):
        query, graph = fig3
        ball = extract_ball(graph, "v6", query.diameter, ball_id=0)
        enc = encrypt_query_matrix(cgbe, query)
        plan = ssim_plan(cgbe.params, query)
        verdict = ssim_verify_ball(cgbe.params, enc, cgbe.encrypt_one(),
                                   query, ball, plan)
        assert decide_ssim_ball(cgbe, verdict)
        assert len(verdict.per_vertex) == query.size

    def test_center_condition_detected(self, fig3, cgbe):
        """G[v7, 3] centered on a C vertex that simulates nothing."""
        query, graph = fig3
        ball = extract_ball(graph, "v7", query.diameter, ball_id=1)
        enc = encrypt_query_matrix(cgbe, query)
        plan = ssim_plan(cgbe.params, query)
        verdict = ssim_verify_ball(cgbe.params, enc, cgbe.encrypt_one(),
                                   query, ball, plan)
        decided = decide_ssim_ball(cgbe, verdict)
        truth = strong_simulation(query, ball) is not None
        assert truth <= decided  # soundness
        assert not truth  # and for this ball the truth is negative

    def test_missing_label_makes_empty_vertex_result(self, fig3, cgbe):
        query, graph = fig3
        ball = extract_ball(graph, "v1", 1, ball_id=2)  # tiny ball {v1,v3}
        enc = encrypt_query_matrix(cgbe, query)
        plan = ssim_plan(cgbe.params, query)
        verdict = ssim_verify_ball(cgbe.params, enc, cgbe.encrypt_one(),
                                   query, ball, plan)
        assert not decide_ssim_ball(cgbe, verdict)

    def test_soundness_no_false_negatives(self, cgbe):
        """Property over a random graph: every strongly-simulating ball
        survives the one-round ciphertext check."""
        g = social_graph(150, 3, 0.1, 6, seed=8)
        qgen = QGen(g, seed=4)
        query = qgen.generate(4, 2, Semantics.SSIM)
        enc = encrypt_query_matrix(cgbe, query)
        plan = ssim_plan(cgbe.params, query)
        c_one = cgbe.encrypt_one()
        centers = sorted(g.vertices(), key=repr)[:40]
        checked_positive = 0
        for center in centers:
            ball = extract_ball(g, center, query.diameter, ball_id=0)
            verdict = ssim_verify_ball(cgbe.params, enc, c_one, query,
                                       ball, plan)
            decided = decide_ssim_ball(cgbe, verdict)
            truth = strong_simulation(query, ball) is not None
            if truth:
                checked_positive += 1
                assert decided
        assert checked_positive >= 0  # vacuous guard; soundness asserted above

    def test_works_with_label_view(self, fig3, cgbe):
        query, graph = fig3
        ball = extract_ball(graph, "v6", query.diameter, ball_id=0)
        enc = encrypt_query_matrix(cgbe, query)
        view = QueryLabelView.of(query)
        plan = ssim_plan(cgbe.params, view)
        verdict = ssim_verify_ball(cgbe.params, enc, cgbe.encrypt_one(),
                                   view, ball, plan)
        assert decide_ssim_ball(cgbe, verdict)

    def test_plan_factors(self, fig3, cgbe):
        query, _ = fig3
        plan = ssim_plan(cgbe.params, query)
        assert plan.factors == 2 * query.size
