"""Tests for the protocol message types."""

import pytest

from repro.framework.messages import (
    DecryptedPMs,
    EncryptedBallBlob,
    EncryptedQueryMessage,
    PruningMessages,
)
from repro.graph.generators import fig3_query
from repro.graph.query import Semantics


@pytest.fixture(scope="module")
def message(cgbe):
    from repro.core.encoding import encrypt_query_matrix

    query = fig3_query()
    return EncryptedQueryMessage(
        semantics=query.semantics,
        diameter=query.diameter,
        vertex_labels=tuple(query.label(u) for u in query.vertex_order),
        params=cgbe.public_params(),
        encrypted_matrix=encrypt_query_matrix(cgbe, query),
        c_one=cgbe.encrypt_one(),
    )


class TestEncryptedQueryMessage:
    def test_public_properties(self, message):
        assert message.size == 5
        assert message.alphabet == {"A", "B", "C", "D"}
        assert message.semantics is Semantics.HOM
        assert message.diameter == 3

    def test_optional_payloads_default_absent(self, message):
        assert message.twiglet_tables is None
        assert message.path_tables is None
        assert message.neighbor_tables is None
        assert message.bf_message is None

    def test_matrix_shape(self, message):
        assert len(message.encrypted_matrix) == 5
        assert all(len(row) == 5 for row in message.encrypted_matrix)


class TestDecryptedPMs:
    def test_theta(self):
        pms = DecryptedPMs(ball_ids=(1, 2, 3, 4),
                           positives=frozenset({2}))
        assert pms.theta == 0.25

    def test_theta_empty(self):
        assert DecryptedPMs(ball_ids=(), positives=frozenset()).theta == 0.0


class TestContainers:
    def test_pruning_messages_default_empty(self):
        pms = PruningMessages()
        assert not pms.bf and not pms.twiglet
        assert not pms.path and not pms.neighbor

    def test_encrypted_ball_blob_size(self):
        blob = EncryptedBallBlob(ball_id=3, blob=b"x" * 40)
        assert blob.size == 40
