"""Tests for Query / QueryLabelView / Semantics."""

import pytest

from repro.graph.generators import fig3_graph, fig3_query
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query import Query, QueryLabelView, Semantics


class TestQuery:
    def test_fig3_diameter(self):
        assert fig3_query().diameter == 3

    def test_alphabet_and_labels(self):
        q = fig3_query()
        assert q.alphabet == {"A", "B", "C", "D"}
        assert q.label("u1") == "B"
        assert q.size == 5

    def test_vertex_order_fixed(self):
        q = fig3_query()
        assert q.vertex_order == ("u1", "u2", "u3", "u4", "u5")
        assert q.row_of("u3") == 2

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError, match="connected"):
            Query.from_edges({1: "A", 2: "B"}, [])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            Query(pattern=LabeledGraph())

    def test_bad_vertex_order_rejected(self):
        with pytest.raises(ValueError, match="vertex_order"):
            Query.from_edges({1: "A", 2: "B"}, [(1, 2)],
                             vertex_order=(1,))

    def test_single_vertex_query(self):
        q = Query.from_edges({1: "A"}, [])
        assert q.diameter == 0
        assert q.size == 1

    def test_label_choice_strategies(self):
        """Alg. 3 line 2: max frequency; 'min' is the ablation choice."""
        q = fig3_query()
        g = fig3_graph()
        # Frequencies in G: A=2, B=1, C=3, D=1.
        assert q.most_frequent_label(g) == "C"
        assert q.least_frequent_label(g) in {"B", "D"}

    def test_semantics_values(self):
        assert Semantics("hom") is Semantics.HOM
        assert Semantics("sub-iso") is Semantics.SUB_ISO
        assert Semantics("ssim") is Semantics.SSIM


class TestQueryLabelView:
    def test_view_mirrors_query_labels(self):
        q = fig3_query()
        view = QueryLabelView.of(q)
        assert view.size == q.size
        assert view.alphabet == q.alphabet
        assert view.diameter == q.diameter
        for row, u in enumerate(q.vertex_order):
            assert view.label(row) == q.label(u)

    def test_view_has_no_edges(self):
        """The SP-side view must not expose the pattern at all."""
        view = QueryLabelView.of(fig3_query())
        assert not hasattr(view, "pattern")

    def test_view_vertex_order_is_row_indices(self):
        view = QueryLabelView(labels=("A", "B"), diameter=1)
        assert view.vertex_order == (0, 1)
