"""The README quickstart must keep working verbatim."""


def test_readme_quickstart_runs():
    from repro import Semantics
    from repro.framework import PriloConfig, PriloStar
    from repro.graph import Query
    from repro.graph.generators import social_graph

    graph = social_graph(num_vertices=600, lattice_neighbors=3,
                         rewire_probability=0.05, num_labels=12, seed=42)

    query = Query.from_edges(
        labels={"a": 3, "b": 7, "c": 5},
        edges=[("b", "a"), ("c", "b")],       # the secret structure
        semantics=Semantics.HOM)

    engine = PriloStar.setup(graph, PriloConfig(k_players=4, seed=7))
    result = engine.run(query)
    assert result.num_matches >= 0
    assert len(result.verified_ids) >= len(result.match_ball_ids)

    # The parallel variant shown right below it: same answers, per-worker
    # wall-clocks recorded.
    with PriloStar.setup(graph, PriloConfig(k_players=4, seed=7,
                                            executor="process",
                                            parallelism=4)) as parallel:
        par = parallel.run(query)
    assert par.matches == result.matches
    assert par.verified_ids == result.verified_ids
    assert par.metrics.per_worker_eval_wall


def test_readme_example_scripts_exist():
    from pathlib import Path

    readme = Path(__file__).parent.parent / "README.md"
    text = readme.read_text(encoding="utf-8")
    examples = Path(__file__).parent.parent / "examples"
    for line in text.splitlines():
        if line.startswith("| `") and line.endswith(" |"):
            name = line.split("`")[1]
            if name.endswith(".py"):
                assert (examples / name).is_file(), f"README lists {name}"


def test_readme_batch_serving_runs():
    from repro import Semantics
    from repro.framework import PriloConfig, PriloStar, QueryBatchEngine
    from repro.graph import Query
    from repro.graph.generators import social_graph

    graph = social_graph(num_vertices=600, lattice_neighbors=3,
                         rewire_probability=0.05, num_labels=12, seed=42)
    query = Query.from_edges(
        labels={"a": 3, "b": 7, "c": 5},
        edges=[("b", "a"), ("c", "b")],
        semantics=Semantics.HOM)
    query2 = Query.from_edges(
        labels={"a": 2, "b": 7, "c": 5},
        edges=[("b", "a"), ("c", "b")],
        semantics=Semantics.HOM)

    batch = QueryBatchEngine(PriloStar.setup(graph, PriloConfig(seed=7)))
    report = batch.serve([query, query2, query])
    summary = report.summary()
    assert summary["queries"] == 3
    assert summary["distinct_signatures"] == 2
    # The repeated query hits the cache and answers like a solo run.
    solo = PriloStar.setup(graph, PriloConfig(seed=7)).run(query)
    assert report.results[0].match_ball_ids == solo.match_ball_ids
    assert report.results[2].match_ball_ids == solo.match_ball_ids
    assert report.cache_stats.hits > 0
