"""Tests for the dataset registry."""

import pytest

from repro.graph.query import Semantics
from repro.workloads.datasets import (
    DATASET_SPECS,
    load_dataset,
    tiny_dataset,
)


class TestRegistry:
    def test_all_names_present(self):
        assert set(DATASET_SPECS) == {"slashdot", "dblp", "twitter", "ldbc"}

    def test_table3_alphabets(self):
        assert DATASET_SPECS["slashdot"].hom_labels == 100
        assert DATASET_SPECS["dblp"].hom_labels == 150
        assert DATASET_SPECS["twitter"].hom_labels == 100
        for name in ("slashdot", "dblp", "twitter"):
            assert DATASET_SPECS[name].ssim_labels == 64
        assert DATASET_SPECS["ldbc"].hom_labels == 213

    def test_paper_reference_figures(self):
        assert DATASET_SPECS["slashdot"].paper_vertices == 82_168
        assert DATASET_SPECS["twitter"].paper_edges == 1_768_149

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("facebook")


class TestLoading:
    def test_scaled_loading(self):
        ds = load_dataset("dblp", scale=0.1)
        assert ds.graph.num_vertices == DATASET_SPECS["dblp"].num_vertices // 10
        assert len(ds.graph.alphabet) <= 150
        assert len(ds.ssim_graph.alphabet) <= 64

    def test_ssim_variant_same_topology(self):
        ds = load_dataset("dblp", scale=0.1)
        assert set(ds.graph.edges()) == set(ds.ssim_graph.edges())
        assert ds.graph_for(Semantics.SSIM) is ds.ssim_graph
        assert ds.graph_for(Semantics.HOM) is ds.graph

    def test_deterministic(self):
        a = load_dataset("dblp", scale=0.1)
        b = load_dataset("dblp", scale=0.1)
        assert a.graph == b.graph

    def test_seed_override_changes_graph(self):
        a = load_dataset("dblp", scale=0.1)
        b = load_dataset("dblp", scale=0.1, seed=99)
        assert a.graph != b.graph

    def test_ldbc_single_alphabet(self):
        ds = load_dataset("ldbc", scale=0.1)
        assert ds.graph is ds.ssim_graph

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            load_dataset("dblp", scale=-1)


class TestQueries:
    def test_random_queries(self):
        ds = tiny_dataset(seed=1)
        queries = ds.random_queries(3, size=4, diameter=2)
        assert len(queries) == 3
        assert all(q.size == 4 for q in queries)

    def test_semantics_selects_graph(self):
        ds = tiny_dataset(seed=1)
        q = ds.random_query(size=4, diameter=2, semantics=Semantics.SSIM)
        assert q.alphabet <= ds.ssim_graph.alphabet
