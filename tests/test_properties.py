"""Cross-cutting property tests: the reproduction's master invariants.

These pull several subsystems together under hypothesis-driven inputs:

1. **Exactness (hom/sub-iso)**: the encrypted verification pipeline decides
   each candidate ball exactly like the plaintext matcher.
2. **Soundness (all pruning)**: no pruning technique ever discards a ball
   that contains a match.
3. **Privacy structure**: SP-side computations produce identical
   *observable* work profiles for structurally different queries with the
   same label multiset (the operational meaning of query-obliviousness).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoding import encrypt_query_matrix
from repro.core.enumeration import enumerate_cmms
from repro.core.table_pruning import player_table_prune, table_plan
from repro.core.aggregation import decide_positive
from repro.core.twiglets import build_twiglet_tables, twiglets_from
from repro.core.verification import decide_ball, verification_plan, verify_ball
from repro.crypto.cgbe import CGBE
from repro.graph.ball import extract_ball
from repro.graph.generators import social_graph
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.qgen import QGen
from repro.graph.query import Query
from repro.semantics.evaluate import ball_contains_match


@pytest.fixture(scope="module")
def scheme():
    return CGBE.generate(modulus_bits=1024, q_bits=24, r_bits=24, seed=31)


def random_world(seed: int):
    """A small random graph plus a QGen query over it."""
    graph = social_graph(80, 2, 0.1, 6, seed=seed % 11)
    query = QGen(graph, seed=seed).generate(4, 2)
    return graph, query


class TestExactness:
    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_encrypted_verification_equals_plaintext_matcher(self, seed):
        graph, query = random_world(seed)
        scheme = CGBE.generate(modulus_bits=1024, q_bits=24, r_bits=24,
                               seed=seed)
        enc = encrypt_query_matrix(scheme, query)
        plan = verification_plan(scheme.params, query)
        c_one = scheme.encrypt_one()
        label = query.most_frequent_label(graph)
        centers = sorted(graph.vertices_with_label(label), key=repr)[:15]
        for center in centers:
            ball = extract_ball(graph, center, query.diameter, ball_id=0)
            cmms = enumerate_cmms(query, ball).cmms
            verdict = verify_ball(scheme.params, enc, c_one, ball, cmms,
                                  plan)
            assert decide_ball(scheme, verdict) == ball_contains_match(
                query, ball)


class TestPruningSoundness:
    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=15, deadline=None)
    def test_twiglet_pruning_never_drops_matches(self, seed):
        graph, query = random_world(seed)
        if len(query.alphabet) < 3:
            return  # twiglets inapplicable
        scheme = CGBE.generate(modulus_bits=1024, q_bits=24, r_bits=24,
                               seed=seed + 1)
        tables = build_twiglet_tables(scheme, query, 3)
        if not tables or len(tables[0]) == 0:
            return
        plan = table_plan(scheme.params, len(tables[0]))
        c_one = scheme.encrypt_one()
        label = query.most_frequent_label(graph)
        for center in sorted(graph.vertices_with_label(label),
                             key=repr)[:12]:
            ball = extract_ball(graph, center, query.diameter, ball_id=0)
            features = twiglets_from(ball.graph, center, 3, query.alphabet)
            positive = decide_positive(scheme, player_table_prune(
                scheme.params, tables, ball, features, c_one, plan))
            if ball_contains_match(query, ball):
                assert positive, "twiglet pruning dropped a true positive"


class TestObliviousness:
    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=15, deadline=None)
    def test_cmm_enumeration_identical_for_equal_labels(self, seed):
        """Two connected queries over the same labeled vertex set always
        produce the same CMM stream on any ball."""
        rng = random.Random(seed)
        labels = {i: rng.choice("ABCD") for i in range(4)}
        path_edges = [(i, i + 1) for i in range(3)]
        star_edges = [(0, i) for i in range(1, 4)]
        q1 = Query.from_edges(labels, path_edges,
                              vertex_order=tuple(range(4)))
        q2 = Query.from_edges(labels, star_edges,
                              vertex_order=tuple(range(4)))
        graph = social_graph(60, 2, 0.1, 4, seed=seed % 7)
        for center in sorted(graph.vertices())[:10]:
            ball = extract_ball(graph, center, 2, ball_id=0)
            a = [c.assignment for c in enumerate_cmms(q1, ball).cmms]
            b = [c.assignment for c in enumerate_cmms(q2, ball).cmms]
            assert a == b

    def test_verification_power_sequence_edge_independent(self, scheme):
        """The ciphertext powers Alg. 2 produces depend only on |V_Q| --
        never on which entries of M_Q are edges."""
        labels = {0: "A", 1: "B", 2: "C"}
        q_path = Query.from_edges(labels, [(0, 1), (1, 2)],
                                  vertex_order=(0, 1, 2))
        q_fan = Query.from_edges(labels, [(0, 1), (0, 2)],
                                 vertex_order=(0, 1, 2))
        graph = LabeledGraph.from_edges(
            {10: "A", 11: "B", 12: "C"}, [(10, 11), (11, 12)])
        ball = extract_ball(graph, 10, 2, ball_id=0)
        plan = verification_plan(scheme.params, q_path)
        c_one = scheme.encrypt_one()
        powers = []
        for q in (q_path, q_fan):
            enc = encrypt_query_matrix(scheme, q)
            cmms = enumerate_cmms(q, ball).cmms
            verdict = verify_ball(scheme.params, enc, c_one, ball, cmms,
                                  plan)
            assert verdict.summed is not None
            powers.append(verdict.summed.power)
        assert powers[0] == powers[1]


class TestBlindingRandomness:
    @given(st.integers(1, 1000))
    @settings(max_examples=30, deadline=None)
    def test_decryption_blind_is_multiple_of_message(self, message):
        scheme = CGBE.generate(modulus_bits=512, q_bits=16, r_bits=16,
                               seed=5)
        if message.bit_length() > 16:
            return
        decrypted = scheme.decrypt(scheme.encrypt(message))
        assert decrypted % message == 0
        blind = decrypted // message
        assert blind.bit_length() == 16  # exactly r_bits by construction
