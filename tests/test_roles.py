"""Tests for the four protocol parties (Fig. 4)."""

import pytest

from repro.core.bf_pruning import BFConfig
from repro.crypto.keys import UserKeyring
from repro.framework.messages import PruningMessages
from repro.framework.metrics import MessageSizes, PhaseTimings
from repro.framework.roles import DataOwner, Dealer, Player, User
from repro.graph.generators import fig3_graph, fig3_query
from repro.graph.io import ball_from_bytes
from repro.graph.query import Semantics


@pytest.fixture()
def owner():
    return DataOwner(fig3_graph(), radii=(1, 2, 3), seed=1)


@pytest.fixture()
def user(owner):
    ring = UserKeyring.generate(modulus_bits=1024, seed=2)
    u = User(ring)
    owner.grant_key(u)
    return u


class TestDataOwner:
    def test_player_store_holds_plaintext_balls(self, owner):
        index = owner.player_store()
        ball = index.ball("v6", 3)
        assert ball.size == 7  # readable plaintext

    def test_dealer_store_holds_ciphertext(self, owner):
        store = owner.dealer_store()
        index = owner.player_store()
        ball = index.ball("v6", 3)
        blob = store.get(ball.ball_id)
        assert blob.ball_id == ball.ball_id
        # Dealer-side bytes decrypt only with sk.
        restored = ball_from_bytes(owner.key.cipher().decrypt(blob.blob))
        assert restored.center == "v6"

    def test_encrypted_store_memoized(self, owner):
        store = owner.dealer_store()
        bid = owner.player_store().ball("v6", 3).ball_id
        assert store.get(bid) is store.get(bid)

    def test_player_store_memoized(self, owner):
        """Every caller shares one index -- the ball cache is built once."""
        assert owner.player_store() is owner.player_store()
        assert owner.player_store() is owner.index

    def test_dealer_store_memoized(self, owner):
        assert owner.dealer_store() is owner.dealer_store()

    def test_index_built_lazily(self):
        fresh = DataOwner(fig3_graph(), radii=(1, 2), seed=1)
        assert fresh._index is None
        fresh.player_store()
        assert fresh._index is not None


class TestUserPrepare:
    def test_message_public_parts(self, owner, user):
        query = fig3_query()
        message, state = user.prepare_query(
            query, use_bf=False, use_twiglet=True, use_path=False,
            use_neighbor=False, twiglet_h=3, bf_config=BFConfig(),
            enclaves=[], sizes=MessageSizes(), timings=PhaseTimings())
        assert message.vertex_labels == ("B", "A", "C", "C", "D")
        assert message.diameter == 3
        assert message.semantics is Semantics.HOM
        assert message.twiglet_tables is not None
        assert message.bf_message is None

    def test_bf_requires_enclaves(self, owner, user):
        with pytest.raises(ValueError, match="enclave"):
            user.prepare_query(
                fig3_query(), use_bf=True, use_twiglet=False,
                use_path=False, use_neighbor=False, twiglet_h=3,
                bf_config=BFConfig(), enclaves=[], sizes=MessageSizes(),
                timings=PhaseTimings())

    def test_sizes_accounted(self, owner, user):
        sizes = MessageSizes()
        user.prepare_query(
            fig3_query(), use_bf=False, use_twiglet=True, use_path=False,
            use_neighbor=False, twiglet_h=3, bf_config=BFConfig(),
            enclaves=[], sizes=sizes, timings=PhaseTimings())
        assert sizes.encrypted_matrix > 0
        assert sizes.twiglet_tables > 0


class TestPlayerEvaluation:
    def make_message(self, user, semantics=Semantics.HOM):
        query = fig3_query(semantics)
        message, _ = user.prepare_query(
            query, use_bf=False, use_twiglet=False, use_path=False,
            use_neighbor=False, twiglet_h=3, bf_config=BFConfig(),
            enclaves=[], sizes=MessageSizes(), timings=PhaseTimings())
        return message

    def test_evaluate_ball_positive(self, owner, user):
        message = self.make_message(user)
        player = Player(0, owner.player_store())
        ball = owner.player_store().ball("v6", 3)
        result = player.evaluate_ball(message, ball, enumeration_limit=100,
                                      cmm_bound_bypass=1000)
        assert result.cmms == 18
        assert not result.bypassed
        assert user.decrypt_results([result], PhaseTimings()) == {
            ball.ball_id}

    def test_evaluate_ball_bypass(self, owner, user):
        message = self.make_message(user)
        player = Player(0, owner.player_store())
        ball = owner.player_store().ball("v6", 3)
        result = player.evaluate_ball(message, ball, enumeration_limit=100,
                                      cmm_bound_bypass=1)
        assert result.bypassed

    def test_evaluate_ssim(self, owner, user):
        message = self.make_message(user, Semantics.SSIM)
        player = Player(0, owner.player_store())
        ball = owner.player_store().ball("v6", 3)
        result = player.evaluate_ball(message, ball, enumeration_limit=100,
                                      cmm_bound_bypass=1000)
        assert user.decrypt_results([result], PhaseTimings()) == {
            ball.ball_id}

    def test_compute_pms(self, owner, user):
        query = fig3_query()
        player = Player(0, owner.player_store())
        message, state = user.prepare_query(
            query, use_bf=True, use_twiglet=True, use_path=False,
            use_neighbor=False, twiglet_h=3,
            bf_config=BFConfig(eta=16, expected_trees=100),
            enclaves=[player.enclave], sizes=MessageSizes(),
            timings=PhaseTimings())
        balls = list(owner.player_store().candidate_balls("B", 3))
        pms = PruningMessages()
        costs = {}
        player.compute_pms(message, balls, bf_config=BFConfig(
            eta=16, expected_trees=100), twiglet_h=3, pms=pms,
            pm_costs=costs, timings=PhaseTimings())
        assert set(pms.bf) == {b.ball_id for b in balls}
        assert set(pms.twiglet) == {b.ball_id for b in balls}
        decrypted, per_method = user.decrypt_pms(
            pms, [b.ball_id for b in balls], state, PhaseTimings())
        assert set(per_method) == {"bf", "twiglet"}
        # The v6 ball contains a match, so it must stay positive.
        v6_id = owner.player_store().ball("v6", 3).ball_id
        assert v6_id in decrypted.positives


class TestUserRetrieval:
    def test_retrieve_and_match(self, owner, user):
        query = fig3_query()
        dealer = Dealer(owner.dealer_store())
        ball = owner.player_store().ball("v6", 3)
        matches = user.retrieve_and_match(
            [ball.ball_id], dealer, query, MessageSizes(), PhaseTimings())
        assert ball.ball_id in matches
        found = matches[ball.ball_id]
        assert any(set(m.vertices()) == {"v2", "v3", "v5", "v6"}
                   for m in found)

    def test_retrieval_requires_granted_key(self, owner):
        ring = UserKeyring.generate(modulus_bits=1024, seed=9)
        stranger = User(ring)  # never granted sk
        dealer = Dealer(owner.dealer_store())
        with pytest.raises(PermissionError):
            stranger.retrieve_and_match([0], dealer, fig3_query(),
                                        MessageSizes(), PhaseTimings())


class TestDealer:
    def test_sequences_modes(self, owner):
        from repro.framework.messages import DecryptedPMs

        dealer = Dealer(owner.dealer_store())
        decrypted = DecryptedPMs(ball_ids=tuple(range(8)),
                                 positives=frozenset({1}))
        seqs, mode = dealer.generate_sequences(decrypted, 2, use_ssg=True,
                                               seed=1)
        assert mode == "early"
        seqs, mode = dealer.generate_sequences(decrypted, 2, use_ssg=False,
                                               seed=1)
        assert mode == "rsg"
