"""Documentation consistency guards.

DESIGN.md's per-experiment index and EXPERIMENTS.md's bench references
must point at files that exist -- stale docs are bugs here, because the
index is the contract between the paper's evaluation and this repo.
"""

import re
from pathlib import Path

ROOT = Path(__file__).parent.parent


def test_design_bench_targets_exist():
    text = (ROOT / "DESIGN.md").read_text(encoding="utf-8")
    targets = set(re.findall(r"`(benchmarks/bench_[a-z0-9_]+\.py)`", text))
    assert targets, "DESIGN.md must reference benchmark targets"
    for target in sorted(targets):
        assert (ROOT / target).is_file(), f"DESIGN.md references {target}"


def test_experiments_bench_references_exist():
    text = (ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
    names = set(re.findall(r"`(bench_[a-z0-9_]+\.py)`", text))
    assert names
    for name in sorted(names):
        assert (ROOT / "benchmarks" / name).is_file(), (
            f"EXPERIMENTS.md references {name}")


def test_every_bench_file_is_indexed_in_design():
    text = (ROOT / "DESIGN.md").read_text(encoding="utf-8")
    for path in sorted((ROOT / "benchmarks").glob("bench_*.py")):
        assert path.name in text, (
            f"{path.name} missing from DESIGN.md's experiment index")


def test_protocol_doc_references_real_tests():
    text = (ROOT / "docs" / "PROTOCOL.md").read_text(encoding="utf-8")
    for ref in re.findall(r"`tests/(test_[a-z_]+\.py)", text):
        assert (ROOT / "tests" / ref).is_file(), f"PROTOCOL.md: {ref}"


def test_design_module_map_paths_exist():
    text = (ROOT / "DESIGN.md").read_text(encoding="utf-8")
    block = text.split("src/repro/", 1)[1].split("```", 1)[0]
    for line in block.splitlines():
        match = re.match(r"\s+([a-z_]+\.py)\s", line)
        if not match:
            continue
        name = match.group(1)
        hits = list((ROOT / "src" / "repro").rglob(name))
        assert hits, f"DESIGN.md module map lists missing file {name}"


def test_operations_doc_matches_cli_contract():
    """docs/operations.md is the exit-code contract the CLI docstring
    points at -- it must exist, reference real tests, and spell out the
    tampered-wins precedence that test_cli asserts."""
    text = (ROOT / "docs" / "operations.md").read_text(encoding="utf-8")
    for ref in re.findall(r"tests/(test_[a-z_]+\.py)", text):
        assert (ROOT / "tests" / ref).is_file(), f"operations.md: {ref}"
    lowered = text.lower()
    for needle in ("exit 2", "exits 3", "tampered wins over stale",
                   "--resume", "--deadline-ms", "journal inspect"):
        assert needle in lowered, f"operations.md must document {needle!r}"
    cli_doc = (ROOT / "src" / "repro" / "cli.py").read_text("utf-8")
    assert "docs/operations.md" in cli_doc
